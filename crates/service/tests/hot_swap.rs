//! Repository lifecycle: hot swaps serve the new generation to new
//! queries, drain in-flight queries on their original generation, and
//! never leak an answer across generations — the dead generation's
//! cache entries are reaped and every outcome is tagged with the
//! generation it was answered from.

use sc_core::{IterSetCover, IterSetCoverConfig};
use sc_service::{QuerySpec, ServiceBuilder, ServiceConfig};
use sc_setsystem::{gen, SetSystem};
use sc_stream::run_reported;

fn iter(seed: u64) -> QuerySpec {
    QuerySpec::IterCover { delta: 0.5, seed }
}

fn solo_cover(system: &SetSystem, seed: u64) -> Vec<u32> {
    let mut alg = IterSetCover::new(IterSetCoverConfig {
        delta: 0.5,
        seed,
        ..Default::default()
    });
    run_reported(&mut alg, system).cover
}

#[test]
fn hot_swap_answers_from_the_new_generation_with_zero_stale_answers() {
    // Same dimensions, different content: a stale answer would be
    // wrong (and, being a different planted instance, visibly so).
    let repo1 = gen::planted(512, 1024, 16, 5);
    let repo2 = gen::planted(512, 1024, 16, 6);
    let (solo1, solo2) = (solo_cover(&repo1.system, 9), solo_cover(&repo2.system, 9));
    assert_ne!(solo1, solo2, "the two generations answer differently");

    let service = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .tenant("default", repo1.system.clone())
        .build();
    let ((before, generation, after), metrics) = service.serve(|handle| {
        let before = handle
            .submit(iter(9))
            .expect("open")
            .wait()
            .expect("served");
        let generation = handle
            .reload(repo2.system.clone())
            .expect("open")
            .wait()
            .expect("swapped");
        let after = handle
            .submit(iter(9))
            .expect("open")
            .wait()
            .expect("served");
        (before, generation, after)
    });

    assert_eq!(before.generation, 1);
    assert_eq!(before.cover, solo1);
    assert_eq!(generation, 2, "the reload ticket names the new generation");
    assert_eq!(after.generation, 2);
    assert_eq!(after.cover, solo2, "answered from the new repository");
    assert!(
        !after.cached,
        "the identical spec must not hit the dead generation's entry"
    );
    assert_eq!(metrics.reloads, 1);
    // The dead generation's cache entry was reaped eagerly.
    assert_eq!(metrics.reload_evictions, 1);
    assert_eq!(service.cache().eviction_stats(), (0, 1));
    assert_eq!(service.cache().len(), 1, "only the new generation's entry");
    assert_eq!(service.generation().id, 2);
}

#[test]
fn in_flight_queries_drain_on_their_original_generation() {
    let repo1 = gen::planted(1024, 2048, 16, 5);
    let repo2 = gen::planted(1024, 2048, 16, 6);
    let (solo1, solo2) = (solo_cover(&repo1.system, 3), solo_cover(&repo2.system, 3));

    let service = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .tenant("default", repo1.system.clone())
        .build();
    let ((a, b), metrics) = service.serve(|handle| {
        // A enters the pipeline, then the reload lands right behind it
        // (with overwhelming probability while A is still scanning),
        // then B with the identical spec. Whatever the interleaving, A
        // was submitted before the reload and B after it — the
        // pipeline guarantees A answers from generation 1 and B from
        // generation 2.
        let ta = handle.submit(iter(3)).expect("open");
        let reload = handle.reload(repo2.system.clone()).expect("open");
        let tb = handle.submit(iter(3)).expect("open");
        assert_eq!(reload.wait().expect("swapped"), 2);
        (ta.wait().expect("served"), tb.wait().expect("served"))
    });

    assert_eq!((a.generation, b.generation), (1, 2));
    assert_eq!(a.cover, solo1, "drained on its original generation");
    assert_eq!(b.cover, solo2, "served by the new generation");
    assert!(!b.cached, "no answer crossed the swap");
    assert_eq!(metrics.reloads, 1);
    assert_eq!(metrics.queries_completed, 2);
}

#[test]
fn telemetry_ledger_tracks_reloads_and_survives_a_swap() {
    // Process-global telemetry: hold the lock while the gate is on (see
    // the identical note in the coalesce suite).
    let _hold = sc_telemetry::test_hold();
    let was = sc_telemetry::enabled();
    sc_telemetry::set_enabled(true);
    let before: std::collections::BTreeMap<&str, u64> =
        sc_telemetry::registered_counters().into_iter().collect();

    let repo1 = gen::planted(512, 1024, 16, 5);
    let repo2 = gen::planted(512, 1024, 16, 6);
    let (solo1, solo2) = (solo_cover(&repo1.system, 9), solo_cover(&repo2.system, 9));
    let service = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .tenant("default", repo1.system.clone())
        .build();
    let ((a, b), metrics) = service.serve(|handle| {
        let a = handle
            .submit(iter(9))
            .expect("open")
            .wait()
            .expect("served");
        assert_eq!(
            handle.reload(repo2.system.clone()).expect("open").wait(),
            Ok(2)
        );
        let b = handle
            .submit(iter(9))
            .expect("open")
            .wait()
            .expect("served");
        (a, b)
    });

    let after: std::collections::BTreeMap<&str, u64> =
        sc_telemetry::registered_counters().into_iter().collect();
    sc_telemetry::set_enabled(was);

    // Recording changed nothing about the answers.
    assert_eq!(a.cover, solo1);
    assert_eq!(b.cover, solo2, "answered from the new repository");
    assert_eq!(
        metrics.queries_completed,
        metrics.jobs + metrics.cache_hits + metrics.coalesced
    );
    assert_eq!(metrics.reloads, 1);

    let delta =
        |name: &str| after.get(name).copied().unwrap_or(0) - before.get(name).copied().unwrap_or(0);
    assert!(delta("sc_reloads_total") >= 1);
    // The swap reaped generation 1's cache entry, and the reap is on
    // the ledger.
    assert!(delta("sc_cache_evictions_total") >= metrics.reload_evictions as u64);
    assert!(metrics.reload_evictions >= 1);
    assert!(delta("sc_queries_completed_total") >= metrics.queries_completed as u64);
    assert!(delta("sc_query_jobs_total") >= metrics.jobs as u64);
}

#[test]
fn install_repository_swaps_between_batches_and_reaps_the_cache() {
    let repo1 = gen::planted(256, 512, 8, 5);
    let repo2 = gen::planted(256, 512, 8, 6);
    let service = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .tenant("default", repo1.system.clone())
        .build();

    let (first, m1) = service.run_batch(&[iter(1)]);
    assert_eq!(first[0].generation, 1);
    assert_eq!((m1.cache_hits, m1.cache_misses), (0, 1));
    assert_eq!(service.cache().len(), 1);

    let fresh = service.install_repository(repo2.system.clone());
    assert_eq!(fresh.id, 2);
    assert!(service.cache().is_empty(), "generation 1's entry reaped");

    let (second, m2) = service.run_batch(&[iter(1)]);
    assert_eq!(second[0].generation, 2);
    assert!(m2.physical_scans > 0, "no stale zero-scan answer");
    assert_eq!(second[0].cover, solo_cover(&repo2.system, 1));
}

#[test]
fn swapping_does_not_reap_a_shared_cache() {
    use sc_service::OutcomeCache;
    use std::sync::Arc;
    // Two services share one cache and serve the same repository; one
    // of them swapping away must not delete the entries the other is
    // still hitting — its generation keeps the fingerprint alive.
    let repo = gen::planted(256, 512, 8, 5);
    let other = gen::planted(256, 512, 8, 6);
    let cache = Arc::new(OutcomeCache::new(16));
    let a = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .shared_cache(cache.clone())
        .tenant("default", repo.system.clone())
        .build();
    let b = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .shared_cache(cache.clone())
        .tenant("default", repo.system.clone())
        .build();

    let (_, mb) = b.run_batch(&[iter(4)]);
    assert_eq!(mb.cache_misses, 1);
    a.install_repository(other.system.clone());
    assert_eq!(cache.len(), 1, "B's entry survives A's swap");
    let (again, mb2) = b.run_batch(&[iter(4)]);
    assert!(again[0].cached, "B still hits after A swapped away");
    assert_eq!(mb2.physical_scans, 0);
    assert_eq!(cache.eviction_stats(), (0, 0), "nothing was reaped");
}

#[test]
fn reloading_identical_content_keeps_the_cache_warm() {
    let repo = gen::planted(256, 512, 8, 5);
    let service = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .tenant("default", repo.system.clone())
        .build();
    let (_, m1) = service.run_batch(&[iter(2)]);
    assert_eq!(m1.cache_misses, 1);

    // Same content ⇒ same fingerprint: the generation id advances but
    // the cached answers stay valid (and reachable).
    let fresh = service.install_repository(repo.system.clone());
    assert_eq!(fresh.id, 2);
    assert_eq!(service.cache().len(), 1, "nothing reaped");

    let (again, m2) = service.run_batch(&[iter(2)]);
    assert!(again[0].cached, "the entry survived the same-content swap");
    assert_eq!(m2.physical_scans, 0);
    assert_eq!(again[0].generation, 2, "reported under the live generation");
}
