//! The cross-query outcome cache: repeats answer in zero physical
//! scans with bit-identical observables, and the repository
//! fingerprint in the cache key keeps different repositories apart.

use sc_service::{OutcomeCache, QuerySpec, ServiceBuilder, ServiceConfig};
use sc_setsystem::gen;
use std::sync::Arc;

fn spec(seed: u64) -> QuerySpec {
    QuerySpec::IterCover { delta: 0.5, seed }
}

#[test]
fn repeat_queries_hit_in_zero_physical_scans_with_identical_results() {
    let inst = gen::planted(512, 1024, 16, 11);
    let service = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .tenant("default", inst.system.clone())
        .build();

    let (first, m1) = service.run_batch(&[spec(7)]);
    assert_eq!((m1.cache_hits, m1.cache_misses), (0, 1));
    assert!(m1.physical_scans > 0);
    assert!(!first[0].cached);

    // The same query again: answered from the cache — the run's
    // ScanLedger never performs a physical scan.
    let (again, m2) = service.run_batch(&[spec(7)]);
    assert_eq!((m2.cache_hits, m2.cache_misses), (1, 0));
    assert_eq!(m2.physical_scans, 0, "a cache hit costs zero scans");
    assert!(again[0].cached);
    assert_eq!(again[0].cover, first[0].cover, "bit-identical cover");
    assert_eq!(again[0].logical_passes, first[0].logical_passes);
    assert_eq!(again[0].space_words, first[0].space_words);
    assert_eq!(again[0].covered, first[0].covered);
    assert_eq!(again[0].required, first[0].required);
    assert_eq!(again[0].epochs_joined, 0);
}

#[test]
fn later_waves_of_a_batch_hit_the_cache() {
    let inst = gen::planted(256, 512, 8, 5);
    let service = ServiceBuilder::new()
        .config(ServiceConfig {
            max_inflight: 2,
            ..Default::default()
        })
        .tenant("default", inst.system.clone())
        .build();
    // Wave 1 (two slots) runs and retires, populating the cache; the
    // remaining four repeats are answered without occupying a slot.
    let (outcomes, metrics) = service.run_batch(&[spec(3); 6]);
    assert_eq!(metrics.cache_misses, 2);
    assert_eq!(metrics.cache_hits, 4);
    assert_eq!(metrics.queries_completed, 6);
    assert_eq!(
        metrics.physical_scans, outcomes[0].logical_passes,
        "only wave 1 scanned"
    );
    for o in &outcomes {
        assert_eq!(o.cover, outcomes[0].cover);
        assert_eq!(o.logical_passes, outcomes[0].logical_passes);
        assert_eq!(o.space_words, outcomes[0].space_words);
    }
    assert!(outcomes[2..].iter().all(|o| o.cached));
}

#[test]
fn differing_repository_fingerprint_misses() {
    let a = gen::planted(256, 512, 8, 5);
    let b = gen::planted(256, 512, 8, 6); // same shape, different data
    assert_ne!(
        OutcomeCache::fingerprint(&a.system),
        OutcomeCache::fingerprint(&b.system)
    );
    let shared = Arc::new(OutcomeCache::new(64));
    let service_a = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .shared_cache(shared.clone())
        .tenant("default", a.system.clone())
        .build();
    let service_b = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .shared_cache(shared.clone())
        .tenant("default", b.system.clone())
        .build();

    let (from_a, _) = service_a.run_batch(&[spec(9)]);
    // The same spec against a different repository must not reuse A's
    // answer: the fingerprint differs, so it is a miss and runs fresh.
    let (from_b, mb) = service_b.run_batch(&[spec(9)]);
    assert_eq!((mb.cache_hits, mb.cache_misses), (0, 1));
    assert!(mb.physical_scans > 0, "B really scanned its repository");
    assert!(!from_b[0].cached);
    assert_ne!(from_a[0].cover, from_b[0].cover, "different repositories");

    // Same repository + shared cache across service instances: hit.
    let service_a2 = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .shared_cache(shared)
        .tenant("default", a.system.clone())
        .build();
    let (again, ma2) = service_a2.run_batch(&[spec(9)]);
    assert_eq!((ma2.cache_hits, ma2.cache_misses), (1, 0));
    assert_eq!(ma2.physical_scans, 0);
    assert_eq!(again[0].cover, from_a[0].cover);
}

#[test]
fn serve_mode_answers_repeats_from_the_cache() {
    let inst = gen::planted(256, 512, 8, 3);
    let service = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .tenant("default", inst.system.clone())
        .build();
    let (outcomes, metrics) = service.serve(|handle| {
        let first = handle
            .submit(spec(4))
            .expect("open")
            .wait()
            .expect("served");
        let second = handle
            .submit(spec(4))
            .expect("open")
            .wait()
            .expect("served");
        [first, second]
    });
    assert_eq!(metrics.cache_hits, 1);
    assert_eq!(metrics.queries_completed, 2);
    assert!(!outcomes[0].cached && outcomes[1].cached);
    assert_eq!(outcomes[0].cover, outcomes[1].cover);
    assert_eq!(outcomes[0].logical_passes, outcomes[1].logical_passes);
    assert_eq!(outcomes[0].space_words, outcomes[1].space_words);
}

#[test]
fn zero_capacity_disables_caching() {
    let inst = gen::planted(128, 256, 4, 2);
    let service = ServiceBuilder::new()
        .config(ServiceConfig {
            cache_capacity: 0,
            ..Default::default()
        })
        .tenant("default", inst.system.clone())
        .build();
    let (_, m1) = service.run_batch(&[spec(1)]);
    let (again, m2) = service.run_batch(&[spec(1)]);
    assert_eq!(m1.cache_hits + m2.cache_hits, 0);
    assert!(m2.physical_scans > 0, "repeat re-ran");
    assert!(!again[0].cached);
}
