//! Scan sharing must be real and measured: N concurrent queries cost
//! the *maximum* of their logical pass counts in physical scans, not
//! the sum — plus the concurrent serve path must drain cleanly under
//! backpressure.

use sc_core::{IterSetCover, IterSetCoverConfig};
use sc_service::{QuerySpec, ServiceBuilder, ServiceConfig};
use sc_setsystem::gen;
use sc_stream::run_reported;
use std::time::Duration;

#[test]
fn eight_identical_queries_ride_one_query_worth_of_scans() {
    let inst = gen::planted(512, 1024, 16, 11);
    let spec = QuerySpec::IterCover {
        delta: 0.5,
        seed: 7,
    };
    let mut solo_alg = IterSetCover::new(IterSetCoverConfig {
        delta: 0.5,
        seed: 7,
        ..Default::default()
    });
    let solo = run_reported(&mut solo_alg, &inst.system);

    let service = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .tenant("default", inst.system.clone())
        .build();
    let n = 8;
    let (outcomes, metrics) = service.run_batch(&vec![spec; n]);
    for outcome in &outcomes {
        assert_eq!(outcome.cover, solo.cover, "identical queries, same cover");
        assert_eq!(outcome.logical_passes, solo.passes);
        assert_eq!(outcome.space_words, solo.space_words);
    }
    // The acceptance bound is solo + O(1) epoch overhead; with batch
    // admission the sharing is in fact perfect.
    assert_eq!(
        metrics.physical_scans, solo.passes,
        "N identical queries must share every physical scan"
    );
    assert!(metrics.physical_scans + 1 < n * solo.passes);
}

#[test]
fn admission_beyond_max_inflight_waves_through() {
    let inst = gen::planted(256, 512, 8, 5);
    let spec = QuerySpec::IterCover {
        delta: 0.5,
        seed: 1,
    };
    // Cache disabled: this test pins *wave* admission — with the cache
    // on, waves 2 and 3 would be answered from the cache instead of
    // re-running (see the `outcome_cache` test for that path).
    let service = ServiceBuilder::new()
        .config(ServiceConfig {
            max_inflight: 4,
            cache_capacity: 0,
            ..Default::default()
        })
        .tenant("default", inst.system.clone())
        .build();
    let (outcomes, metrics) = service.run_batch(&vec![spec; 12]);
    assert!(outcomes.iter().all(|o| o.goal_met()));
    assert!(metrics.max_inflight_seen <= 4);
    // Three admission waves of 4 identical queries each: each wave
    // shares its scans, so physical scans ≈ 3 × solo, well under 12 ×.
    let solo_passes = outcomes[0].logical_passes;
    assert!(metrics.physical_scans <= 3 * solo_passes);
    assert!(metrics.physical_scans < 12 * solo_passes);
}

#[test]
fn concurrent_clients_drain_cleanly() {
    let inst = gen::planted(256, 512, 8, 3);
    let service = ServiceBuilder::new()
        .config(ServiceConfig {
            max_inflight: 16,
            workers: 4,
            queue_depth: 4, // force submit-side backpressure
            ..Default::default()
        })
        .tenant("default", inst.system.clone())
        .build();
    let clients: u64 = 4;
    let per_client: u64 = 6;
    let ((), metrics) = service.serve(|handle| {
        std::thread::scope(|s| {
            for c in 0..clients {
                let handle = handle.clone();
                s.spawn(move || {
                    let tickets: Vec<_> = (0..per_client)
                        .map(|q| {
                            let spec = match q % 3 {
                                0 => QuerySpec::IterCover {
                                    delta: 0.5,
                                    seed: c * 100 + q,
                                },
                                1 => QuerySpec::PartialCover {
                                    epsilon: 0.2,
                                    delta: 0.5,
                                    seed: c * 100 + q,
                                },
                                _ => QuerySpec::GreedyBaseline,
                            };
                            handle.submit(spec).expect("service open")
                        })
                        .collect();
                    for t in tickets {
                        let outcome = t.wait().expect("query served");
                        assert!(outcome.goal_met(), "{}", outcome.protocol_line());
                    }
                });
            }
        });
    });
    assert_eq!(
        metrics.queries_completed,
        (clients * per_client) as usize,
        "every submitted query must complete before serve returns"
    );
    assert!(metrics.physical_scans > 0);
    assert!(metrics.max_inflight_seen >= 2, "epochs actually batched");
}

#[test]
fn mid_stream_joiner_rides_the_in_flight_scan() {
    let inst = gen::planted(512, 1024, 16, 11);
    let solo = |seed: u64| {
        let mut alg = IterSetCover::new(IterSetCoverConfig {
            delta: 0.5,
            seed,
            ..Default::default()
        });
        run_reported(&mut alg, &inst.system)
    };
    let (solo_a, solo_b) = (solo(7), solo(8));
    // The stagger races the scheduler thread: if it is descheduled for
    // longer than the client's sleep, B lands at the epoch boundary
    // instead of joining mid-stream. The window makes that vanishingly
    // rare, but a starved CI runner can still lose the race — retry a
    // couple of times rather than flake (every attempt uses a fresh
    // service, so the scans/covers below stay deterministic).
    let (a, b, metrics) = (0..3)
        .find_map(|attempt| {
            let service = ServiceBuilder::new()
                .config(ServiceConfig {
                    // Hold the fresh group's first scan open long
                    // enough that the staggered second submission
                    // below arrives while that scan is in flight.
                    admission_window: Duration::from_secs(30),
                    ..Default::default()
                })
                .tenant("default", inst.system.clone())
                .build();
            let ((a, b), metrics) = service.serve(|handle| {
                let ta = handle
                    .submit(QuerySpec::IterCover {
                        delta: 0.5,
                        seed: 7,
                    })
                    .expect("open");
                // Arrive while A's first scan is in flight.
                std::thread::sleep(Duration::from_millis(100));
                let tb = handle
                    .submit(QuerySpec::IterCover {
                        delta: 0.5,
                        seed: 8,
                    })
                    .expect("open");
                (ta.wait().expect("served"), tb.wait().expect("served"))
            });
            if metrics.mid_stream_admissions == 1 {
                Some((a, b, metrics))
            } else {
                eprintln!("attempt {attempt}: scheduler outpaced, B joined at the boundary");
                None
            }
        })
        .expect("B joined mid-stream in at least one of three attempts");
    // Solo observables are untouched by the join.
    assert_eq!(a.cover, solo_a.cover);
    assert_eq!(b.cover, solo_b.cover);
    assert_eq!(a.logical_passes, solo_a.passes);
    assert_eq!(b.logical_passes, solo_b.passes);
    assert_eq!(a.space_words, solo_a.space_words);
    assert_eq!(b.space_words, solo_b.space_words);
    // Pass-aligned join: B's first logical pass rode A's first physical
    // scan, so the pair costs max(passes) — not A's passes plus the
    // extra epoch B would need had it waited for the next boundary.
    assert_eq!(
        metrics.physical_scans,
        solo_a.passes.max(solo_b.passes),
        "the joiner shares every scan from the first"
    );
    assert_eq!(
        b.epochs_joined, b.logical_passes,
        "no epoch of B's was spent waiting"
    );
}

#[test]
fn dropped_tickets_do_not_wedge_the_scheduler() {
    let inst = gen::planted(64, 128, 4, 1);
    let service = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .tenant("default", inst.system)
        .build();
    let ((), metrics) = service.serve(|handle| {
        // Submit and walk away: the scheduler must still serve the
        // query (the reply just lands nowhere) and exit cleanly.
        let _ = handle.submit(QuerySpec::GreedyBaseline).expect("open");
        let ticket = handle.submit(QuerySpec::GreedyBaseline).expect("open");
        drop(ticket);
    });
    assert_eq!(metrics.queries_completed, 2);
}
