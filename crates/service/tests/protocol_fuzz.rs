//! Malformed-input fuzzing of the TCP front door.
//!
//! The event-driven session layer must treat a hostile or broken
//! client as a protocol problem, not a process problem: every
//! malformed line is answered with a framed `err msg=…` on the same
//! connection (which stays open), an oversized line is rejected at
//! the buffer cap without unbounded memory growth, and none of it
//! disturbs a well-behaved connection being served concurrently.
//!
//! The garbage menu: truncated verbs, unknown verbs, NUL bytes,
//! `!use` retargeting interleaved mid-query-stream (valid and
//! invalid), and a line far beyond the configured read-buffer cap.

use sc_service::net::{serve_tcp_with, wait_ready, NetConfig, NetStats};
use sc_service::{ServiceBuilder, ServiceMetrics};
use sc_setsystem::gen;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Cap small enough that a test can overflow it with one write.
const READ_BUF_CAP: usize = 1024;

/// Serves two tenants (`default`, `alt`) over TCP on an OS-assigned
/// port; returns the address and the join handle yielding the final
/// accounting.
fn spawn_server() -> (String, std::thread::JoinHandle<(ServiceMetrics, NetStats)>) {
    let main = gen::planted(120, 240, 6, 5);
    let alt = gen::planted(90, 180, 5, 6);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || {
        let service = ServiceBuilder::new()
            .tenant("default", main.system)
            .tenant("alt", alt.system)
            .build();
        let cfg = NetConfig {
            read_buf_cap: READ_BUF_CAP,
            ..NetConfig::default()
        };
        serve_tcp_with(&service, listener, cfg).expect("serve")
    });
    (addr, handle)
}

/// One request line in, one reply line out.
fn round_trip(reader: &mut BufReader<TcpStream>, writer: &mut &TcpStream, line: &[u8]) -> String {
    writer.write_all(line).expect("write");
    writer.write_all(b"\n").expect("write newline");
    writer.flush().expect("flush");
    let mut reply = String::new();
    let n = reader.read_line(&mut reply).expect("read reply");
    assert!(n > 0, "connection died answering {line:?}");
    reply.trim_end().to_string()
}

fn connect(addr: &str) -> (BufReader<TcpStream>, TcpStream) {
    let conn = TcpStream::connect(addr).expect("connect");
    let reader = BufReader::new(conn.try_clone().expect("clone"));
    (reader, conn)
}

#[test]
fn garbage_gets_framed_errors_without_killing_the_session_or_its_neighbours() {
    let (addr, server) = spawn_server();
    wait_ready(&addr, Duration::from_secs(5)).expect("server up");

    // The bystander: a well-behaved connection served concurrently
    // with the fuzzing. Its replies must stay correct throughout.
    let (mut by_reader, by_conn) = connect(&addr);
    let mut by_writer = &by_conn;

    let (mut reader, conn) = connect(&addr);
    let mut writer = &conn;

    // Truncated and unknown verbs, NUL bytes: every line draws one
    // `err msg=…` reply on the same still-open connection.
    let garbage: [&[u8]; 12] = [
        b"!use",
        b"!reload",
        b"!trace",
        b"!trace bogus",
        b"!us default",
        b"!",
        b"!frobnicate now",
        b"iter delta=",
        b"pingpong",
        b"ping\x00",
        b"\x00\x00\x00",
        b"partial eps=nope",
    ];
    for (i, line) in garbage.iter().enumerate() {
        let reply = round_trip(&mut reader, &mut writer, line);
        assert!(
            reply.starts_with("err msg="),
            "garbage #{i} {line:?} drew {reply:?}"
        );
        // The bystander stays fully served between every piece of
        // garbage.
        let pong = round_trip(&mut by_reader, &mut by_writer, b"ping");
        assert_eq!(pong, "pong", "bystander disturbed after garbage #{i}");
    }

    // `!use` interleaved mid-query-stream: valid retargets answer ok
    // and apply to subsequent queries; an unknown tenant answers err
    // and leaves the cursor unchanged.
    for (line, want_prefix) in [
        (&b"iter delta=0.5 seed=1"[..], "ok id="),
        (b"!use alt", "ok use repo=alt"),
        (b"greedy", "ok id="),
        (b"!use nosuch", "err msg="),
        (b"greedy", "ok id="),
        (b"!use default", "ok use repo=default"),
    ] {
        let reply = round_trip(&mut reader, &mut writer, line);
        assert!(
            reply.starts_with(want_prefix),
            "{:?} drew {reply:?}",
            String::from_utf8_lossy(line)
        );
    }

    // An oversized line: framed rejection at the cap, the overflow is
    // discarded as it streams in, and the session keeps serving.
    let huge = vec![b'a'; READ_BUF_CAP * 8];
    let reply = round_trip(&mut reader, &mut writer, &huge);
    assert_eq!(reply, "err msg=line_too_long");
    let reply = round_trip(&mut reader, &mut writer, b"greedy");
    assert!(reply.starts_with("ok id="), "after overflow: {reply:?}");

    // The bystander finishes a real query untouched by all of it.
    let reply = round_trip(&mut by_reader, &mut by_writer, b"iter delta=0.5 seed=9");
    assert!(reply.starts_with("ok id="), "bystander query: {reply:?}");

    drop((reader, conn, by_reader, by_conn));
    let (_reader, shutdown_conn) = connect(&addr);
    (&shutdown_conn).write_all(b"shutdown\n").expect("shutdown");
    let (metrics, stats) = server.join().expect("server thread");
    assert_eq!(stats.buffer_overflows, 1, "exactly one oversized line");
    assert_eq!(stats.shed, 0, "nothing was shed in this test");
    assert!(metrics.queries_completed >= 5, "the real queries completed");
}

#[test]
fn a_flood_of_oversized_lines_is_bounded_and_each_draws_one_error() {
    let (addr, server) = spawn_server();
    wait_ready(&addr, Duration::from_secs(5)).expect("server up");
    let (mut reader, conn) = connect(&addr);
    let mut writer = &conn;
    for _ in 0..8 {
        let huge = vec![b'x'; READ_BUF_CAP * 4];
        let reply = round_trip(&mut reader, &mut writer, &huge);
        assert_eq!(reply, "err msg=line_too_long");
    }
    let reply = round_trip(&mut reader, &mut writer, b"ping");
    assert_eq!(reply, "pong");
    drop((reader, conn));
    let (_reader, shutdown_conn) = connect(&addr);
    (&shutdown_conn).write_all(b"shutdown\n").expect("shutdown");
    let (_metrics, stats) = server.join().expect("server thread");
    assert_eq!(stats.buffer_overflows, 8);
}
