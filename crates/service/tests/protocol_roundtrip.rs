//! Property: [`Request::render`] is the canonical inverse of
//! [`Request::parse`] — `parse(render(r)) == r` for every request the
//! codec can express.
//!
//! This is the contract that lets the stdin pump, the TCP poller, and
//! `sctool client` all speak through the same enum: any request a
//! front-end constructs programmatically serialises to a line the
//! server parses back to the identical value, so there is no second,
//! slightly different grammar hiding in a client.
//!
//! Repository names are generated over the token alphabet the wire
//! grammar can carry (no whitespace — the line protocol is
//! whitespace-delimited). `!reload` paths additionally range over
//! spaces, quotes, and backslashes: the codec double-quotes (and
//! escapes) a path the bare token grammar would misparse, so the
//! round trip is exact for those too.

use proptest::prelude::*;
use proptest::string;
use sc_service::protocol::Request;
use sc_service::QuerySpec;

/// A repository name as the wire carries it: one whitespace-free
/// token, `=`-free so a `repo=<name>` query token survives unscathed.
fn repo_name() -> impl Strategy<Value = String> {
    string::string_regex("[a-z0-9_.-]{1,12}").expect("static pattern")
}

/// A `!reload` path: beyond plain tokens (`/` and `.` are the
/// interesting characters) it may carry spaces, double quotes, and
/// backslashes — the codec's quoted form must round-trip them all.
fn reload_path() -> impl Strategy<Value = String> {
    string::string_regex(r#"[a-zA-Z0-9_./\\" -]{0,24}"#).expect("static pattern")
}

/// Every query spec the grammar admits: `delta` in `(0,1]`, `epsilon`
/// in `[0,1)`, any seed. Rust's shortest-round-trip float formatting
/// makes `Display` → `parse` exact for arbitrary `f64` values.
fn query_spec() -> impl Strategy<Value = QuerySpec> {
    prop_oneof![
        (1e-6..1.0f64, any::<u64>()).prop_map(|(delta, seed)| QuerySpec::IterCover { delta, seed }),
        (0.0..1.0f64, 1e-6..1.0f64, any::<u64>()).prop_map(|(epsilon, delta, seed)| {
            QuerySpec::PartialCover {
                epsilon,
                delta,
                seed,
            }
        }),
        Just(QuerySpec::GreedyBaseline),
    ]
}

/// Every expressible request.
fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (
            prop_oneof![Just(None), repo_name().prop_map(Some)],
            query_spec()
        )
            .prop_map(|(repo, spec)| Request::Query { repo, spec }),
        repo_name().prop_map(|repo| Request::Use { repo }),
        Just(Request::Repos),
        // `!reload` paths range over spaces/quotes/backslashes: render
        // quotes whatever the bare token grammar would misparse, so
        // parse ∘ render stays the identity (a target is always one
        // whitespace-free token — tenant names are).
        reload_path().prop_map(|path| Request::Reload { target: None, path }),
        (repo_name(), reload_path()).prop_map(|(name, path)| Request::Reload {
            target: Some(name),
            path,
        }),
        Just(Request::Stats),
        Just(Request::Metrics),
        any::<u64>().prop_map(|id| Request::Trace { id }),
        Just(Request::Ping),
        Just(Request::Quit),
        Just(Request::Shutdown),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parse_render_is_the_identity(req in request()) {
        let line = req.render();
        let back = Request::parse(&line);
        prop_assert_eq!(back.as_ref(), Ok(&req), "rendered line {:?}", line);
        // And rendering is idempotent: the canonical form renders to
        // itself.
        prop_assert_eq!(back.unwrap().render(), line);
    }
}
