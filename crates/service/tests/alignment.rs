//! Pass-aligned, non-blocking mid-stream admission: a query spliced
//! into a *later* pass of an in-flight epoch group (pass-2 joins
//! pass-2) must return the bit-identical cover, logical pass count,
//! and space peak as its solo run — under the default worker pool and
//! under single-set-shard work-stealing stress alike — and the
//! `Boundary` baseline mode must preserve the same observables.

use sc_core::partial::{run_partial, PartialIterSetCover};
use sc_core::{IterSetCover, IterSetCoverConfig};
use sc_service::{
    AdmissionMode, QueryOutcome, QuerySpec, ServiceBuilder, ServiceConfig, ServiceMetrics,
};
use sc_setsystem::{gen, SetSystem};
use sc_stream::run_reported;
use std::time::Duration;

/// (cover, logical passes, space words) of a query run solo.
fn solo(spec: &QuerySpec, system: &SetSystem) -> (Vec<u32>, usize, usize) {
    match *spec {
        QuerySpec::IterCover { delta, seed } => {
            let mut alg = IterSetCover::new(IterSetCoverConfig {
                delta,
                seed,
                ..Default::default()
            });
            let r = run_reported(&mut alg, system);
            (r.cover, r.passes, r.space_words)
        }
        QuerySpec::PartialCover {
            epsilon,
            delta,
            seed,
        } => {
            let mut alg = PartialIterSetCover::new(IterSetCoverConfig {
                delta,
                seed,
                ..Default::default()
            });
            let r = run_partial(&mut alg, system, epsilon);
            (r.cover, r.passes, r.space_words)
        }
        QuerySpec::GreedyBaseline => {
            let r = run_reported(&mut sc_core::baselines::StoreAllGreedy, system);
            (r.cover, r.passes, r.space_words)
        }
    }
}

fn assert_matches_solo(outcome: &QueryOutcome, system: &SetSystem, label: &str) {
    let (cover, passes, space) = solo(&outcome.spec, system);
    assert_eq!(outcome.cover, cover, "{label}: covers differ");
    assert_eq!(
        outcome.logical_passes, passes,
        "{label}: pass counts differ"
    );
    assert_eq!(outcome.space_words, space, "{label}: space peaks differ");
}

/// Staggered three-query serve run: the head opens a fresh group (the
/// window holds its first scan boundary), a helper splices into scan 1
/// and releases the window, and the late query lands somewhere inside
/// the now-running multi-pass group — a pass-aligned (group pass ≥ 2)
/// splice when the race is won. Returns the outcomes and metrics.
fn staggered_run(
    system: &SetSystem,
    cfg: ServiceConfig,
    late_gap: Duration,
) -> (Vec<QueryOutcome>, ServiceMetrics) {
    let specs = [
        // Multi-pass head: keeps the group alive across many scans.
        QuerySpec::IterCover {
            delta: 0.3,
            seed: 7,
        },
        // Scan-1 splicer: releases the admission window.
        QuerySpec::GreedyBaseline,
        // The pass-aligned candidate: arrives while the group is past
        // its first scan.
        QuerySpec::IterCover {
            delta: 0.5,
            seed: 8,
        },
    ];
    let service = ServiceBuilder::new()
        .config(cfg)
        .tenant("default", system.clone())
        .build();
    service.serve(|handle| {
        let head = handle.submit(specs[0]).expect("open");
        std::thread::sleep(Duration::from_millis(100));
        let helper = handle.submit(specs[1]).expect("open");
        std::thread::sleep(late_gap);
        let late = handle.submit(specs[2]).expect("open");
        vec![
            head.wait().expect("served"),
            helper.wait().expect("served"),
            late.wait().expect("served"),
        ]
    })
}

#[test]
fn pass_2_joiner_is_bit_identical_to_its_solo_run() {
    // A wide repository (many sets over a small universe) makes the
    // scan fan-out the bulk of every epoch, so closed-loop
    // resubmissions keep landing while later scans of the long-lived
    // group are in flight — pass-aligned splices, at debug and
    // release speeds alike (the E20 workload shape). Retry rather
    // than flake on a starved runner; the solo-equivalence assertions
    // run on the accepted attempt.
    let inst = gen::planted(512, 16384, 8, 11);
    let deltas = [0.5, 0.7, 1.0];
    let (clients, per_client) = (3u64, 6u64);
    let (outcomes, metrics) = (0..10)
        .find_map(|attempt| {
            let service = ServiceBuilder::new()
                .config(ServiceConfig {
                    workers: 1,
                    shard_size: 64,
                    ..Default::default()
                })
                .tenant("default", inst.system.clone())
                .build();
            let (outcomes, metrics) = service.serve(|handle| {
                std::thread::scope(|s| {
                    let joins: Vec<_> = (0..clients)
                        .map(|c| {
                            let handle = handle.clone();
                            let delta = deltas[c as usize % deltas.len()];
                            s.spawn(move || {
                                (0..per_client)
                                    .map(|q| {
                                        // Deterministic think time
                                        // decorrelates arrivals from
                                        // epoch boundaries.
                                        std::thread::sleep(Duration::from_millis(
                                            (c * 7 + q * 5) % 9,
                                        ));
                                        handle
                                            .submit(QuerySpec::IterCover {
                                                delta,
                                                seed: c * 1000 + q,
                                            })
                                            .expect("open")
                                            .wait()
                                            .expect("served")
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    joins
                        .into_iter()
                        .flat_map(|j| j.join().expect("client thread"))
                        .collect::<Vec<_>>()
                })
            });
            if metrics.aligned_joins >= 1 {
                Some((outcomes, metrics))
            } else {
                eprintln!("attempt {attempt}: no pass-aligned join this round");
                None
            }
        })
        .expect("a resubmission spliced into pass ≥ 2 in one of ten attempts");
    for (i, outcome) in outcomes.iter().enumerate() {
        assert_matches_solo(
            outcome,
            &inst.system,
            &format!("query {i} ({})", outcome.spec),
        );
        // No query ever rode an epoch without advancing a pass: a
        // spliced joiner's first epoch is the very scan it joined.
        assert_eq!(outcome.epochs_joined, outcome.logical_passes);
        assert!(!outcome.cached && !outcome.coalesced);
    }
    assert_eq!(outcomes.len(), (clients * per_client) as usize);
    assert!(metrics.mid_stream_admissions >= metrics.aligned_joins);
}

#[test]
fn spliced_joiners_under_single_set_shard_stealing_stay_bit_identical() {
    // shard_size=1 maximises work-stealing interleavings while the
    // non-blocking accept drains and splices arrivals; observables
    // must stay solo bit for bit regardless of where each arrival
    // lands (spliced or boundary).
    let inst = gen::planted_noisy(400, 800, 10, 9);
    let specs: Vec<QuerySpec> = vec![
        QuerySpec::IterCover {
            delta: 0.4,
            seed: 1,
        },
        QuerySpec::PartialCover {
            epsilon: 0.1,
            delta: 0.5,
            seed: 2,
        },
        QuerySpec::GreedyBaseline,
        QuerySpec::IterCover {
            delta: 0.5,
            seed: 3,
        },
        QuerySpec::PartialCover {
            epsilon: 0.3,
            delta: 0.5,
            seed: 4,
        },
    ];
    let (outcomes, metrics) = (0..10)
        .find_map(|attempt| {
            let service = ServiceBuilder::new()
                .config(ServiceConfig {
                    workers: 8,
                    shard_size: 1,
                    admission_window: Duration::from_secs(30),
                    ..Default::default()
                })
                .tenant("default", inst.system.clone())
                .build();
            let (outcomes, metrics) = service.serve(|handle| {
                let head = handle.submit(specs[0]).expect("open");
                std::thread::sleep(Duration::from_millis(80));
                let rest: Vec<_> = specs[1..]
                    .iter()
                    .map(|s| handle.submit(*s).expect("open"))
                    .collect();
                let mut outcomes = vec![head.wait().expect("served")];
                outcomes.extend(rest.into_iter().map(|t| t.wait().expect("served")));
                outcomes
            });
            for (i, outcome) in outcomes.iter().enumerate() {
                assert_matches_solo(outcome, &inst.system, &format!("query {i} ({})", specs[i]));
            }
            if metrics.mid_stream_admissions >= 1 {
                Some((outcomes, metrics))
            } else {
                eprintln!("attempt {attempt}: scheduler outpaced, all joined at the boundary");
                None
            }
        })
        .expect("at least one arrival spliced mid-stream in one of ten attempts");
    assert_eq!(outcomes.len(), specs.len());
    assert!(metrics.queries_completed == specs.len());
}

#[test]
fn telemetry_ledger_bounds_aligned_joins_by_mid_stream_admissions() {
    // Process-global telemetry: hold the lock while the gate is on (see
    // the identical note in the coalesce suite). Observables must stay
    // solo-identical with telemetry recording — the layer is
    // observational only.
    let _hold = sc_telemetry::test_hold();
    let was = sc_telemetry::enabled();
    sc_telemetry::set_enabled(true);
    let before: std::collections::BTreeMap<&str, u64> =
        sc_telemetry::registered_counters().into_iter().collect();

    let inst = gen::planted(512, 1024, 16, 3);
    let (outcomes, metrics) = staggered_run(
        &inst.system,
        ServiceConfig {
            admission_window: Duration::from_secs(30),
            ..Default::default()
        },
        Duration::ZERO,
    );

    let after: std::collections::BTreeMap<&str, u64> =
        sc_telemetry::registered_counters().into_iter().collect();
    sc_telemetry::set_enabled(was);

    for (i, outcome) in outcomes.iter().enumerate() {
        assert_matches_solo(
            outcome,
            &inst.system,
            &format!("telemetry-on query {i} ({})", outcome.spec),
        );
    }
    // The run's own ledger: a pass-aligned join IS a mid-stream
    // admission that landed past pass 1, so it can never outnumber
    // them; and every completion is accounted for.
    assert!(metrics.aligned_joins <= metrics.mid_stream_admissions);
    assert_eq!(
        metrics.queries_completed,
        metrics.jobs + metrics.cache_hits + metrics.coalesced
    );

    let delta =
        |name: &str| after.get(name).copied().unwrap_or(0) - before.get(name).copied().unwrap_or(0);
    // The same bound holds on the global ledger. It is asserted on the
    // snapshot's absolute values, not the deltas: mid-stream admissions
    // are counted before the aligned-join refinement at every site and
    // the name-sorted scrape reads the aligned counter first, so no
    // single snapshot can observe the inequality inverted — but two
    // snapshots' deltas could, if a concurrent rider lands between one
    // snapshot's two reads.
    assert!(
        after.get("sc_aligned_joins_total").copied().unwrap_or(0)
            <= after
                .get("sc_mid_stream_admissions_total")
                .copied()
                .unwrap_or(0)
    );
    assert!(delta("sc_mid_stream_admissions_total") >= metrics.mid_stream_admissions as u64);
    assert!(delta("sc_aligned_joins_total") >= metrics.aligned_joins as u64);
    assert!(delta("sc_queries_completed_total") >= metrics.queries_completed as u64);
}

#[test]
fn boundary_mode_baseline_preserves_solo_observables() {
    // The PR 4 path kept for E20's baseline must still be bit-exact.
    // The late query goes in right behind the helper: the helper's
    // arrival released the window with the multi-pass head still many
    // epochs from retiring, so the late query always lands in a live
    // group (a lone fresh head would wait out the whole window).
    let inst = gen::planted(512, 1024, 16, 3);
    let (outcomes, metrics) = staggered_run(
        &inst.system,
        ServiceConfig {
            admission: AdmissionMode::Boundary,
            admission_window: Duration::from_secs(30),
            ..Default::default()
        },
        Duration::ZERO,
    );
    for (i, outcome) in outcomes.iter().enumerate() {
        assert_matches_solo(outcome, &inst.system, &format!("boundary query {i}"));
    }
    // Boundary mode never splices at a scan boundary, so it can never
    // record a pass-aligned join.
    assert_eq!(metrics.aligned_joins, 0);
}

#[test]
fn full_window_with_armed_deadline_defers_without_livelock() {
    // One slot + an armed admission window + a distinct (neither
    // cached nor coalescible) arrival: the arrival must be deferred to
    // the next boundary once, not cycled between the backlog and the
    // splice until the end of time. The deadline watch pulls from the
    // channel only, so the window expires normally and both queries
    // complete.
    let inst = gen::planted(256, 512, 8, 3);
    let service = ServiceBuilder::new()
        .config(ServiceConfig {
            max_inflight: 1,
            admission_window: Duration::from_millis(250),
            ..Default::default()
        })
        .tenant("default", inst.system.clone())
        .build();
    let (outcomes, metrics) = service.serve(|handle| {
        let a = handle
            .submit(QuerySpec::IterCover {
                delta: 0.5,
                seed: 1,
            })
            .expect("open");
        let b = handle.submit(QuerySpec::GreedyBaseline).expect("open");
        vec![a.wait().expect("served"), b.wait().expect("served")]
    });
    assert_eq!(metrics.queries_completed, 2);
    for (i, outcome) in outcomes.iter().enumerate() {
        assert_matches_solo(outcome, &inst.system, &format!("deferred query {i}"));
    }
    assert!(metrics.max_inflight_seen <= 1, "the slot bound held");
}

#[test]
fn aligned_is_the_default_admission_mode() {
    assert_eq!(ServiceConfig::default().admission, AdmissionMode::Aligned);
    assert_eq!(AdmissionMode::parse("aligned"), Ok(AdmissionMode::Aligned));
    assert_eq!(
        AdmissionMode::parse("boundary"),
        Ok(AdmissionMode::Boundary)
    );
    assert!(AdmissionMode::parse("eager").is_err());
}
