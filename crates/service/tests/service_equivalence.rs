//! Every query solved through `sc_service` must return the
//! bit-identical cover, logical pass count, and space peak as the same
//! query run solo via `IterSetCover` / `PartialIterSetCover` /
//! `StoreAllGreedy`.

use sc_core::baselines::StoreAllGreedy;
use sc_core::partial::{run_partial, PartialIterSetCover};
use sc_core::{IterSetCover, IterSetCoverConfig};
use sc_service::{QueryOutcome, QuerySpec, ServiceBuilder, ServiceConfig};
use sc_setsystem::{gen, SetSystem};
use sc_stream::run_reported;

/// (cover, logical passes, space words) of a query run solo.
fn solo(spec: &QuerySpec, system: &SetSystem) -> (Vec<u32>, usize, usize) {
    match *spec {
        QuerySpec::IterCover { delta, seed } => {
            let mut alg = IterSetCover::new(IterSetCoverConfig {
                delta,
                seed,
                ..Default::default()
            });
            let r = run_reported(&mut alg, system);
            (r.cover, r.passes, r.space_words)
        }
        QuerySpec::PartialCover {
            epsilon,
            delta,
            seed,
        } => {
            let mut alg = PartialIterSetCover::new(IterSetCoverConfig {
                delta,
                seed,
                ..Default::default()
            });
            let r = run_partial(&mut alg, system, epsilon);
            (r.cover, r.passes, r.space_words)
        }
        QuerySpec::GreedyBaseline => {
            let r = run_reported(&mut StoreAllGreedy, system);
            (r.cover, r.passes, r.space_words)
        }
    }
}

fn assert_matches_solo(outcome: &QueryOutcome, system: &SetSystem, label: &str) {
    let (cover, passes, space) = solo(&outcome.spec, system);
    assert_eq!(outcome.cover, cover, "{label}: covers differ");
    assert_eq!(
        outcome.logical_passes, passes,
        "{label}: pass counts differ"
    );
    assert_eq!(outcome.space_words, space, "{label}: space peaks differ");
}

#[test]
fn single_queries_match_their_solo_runs() {
    let inst = gen::planted(512, 1024, 16, 11);
    let service = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .tenant("default", inst.system.clone())
        .build();
    for spec in [
        QuerySpec::IterCover {
            delta: 0.5,
            seed: 7,
        },
        QuerySpec::IterCover {
            delta: 0.25,
            seed: 3,
        },
        QuerySpec::PartialCover {
            epsilon: 0.2,
            delta: 0.5,
            seed: 5,
        },
        QuerySpec::GreedyBaseline,
    ] {
        let (outcomes, _) = service.run_batch(&[spec]);
        assert_matches_solo(&outcomes[0], &inst.system, &spec.to_string());
        assert!(outcomes[0].goal_met(), "{spec}");
    }
}

#[test]
fn mixed_concurrent_batch_matches_solo_per_query() {
    let inst = gen::planted_noisy(300, 600, 10, 9);
    let service = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .tenant("default", inst.system.clone())
        .build();
    let specs = vec![
        QuerySpec::IterCover {
            delta: 0.5,
            seed: 1,
        },
        QuerySpec::PartialCover {
            epsilon: 0.1,
            delta: 0.5,
            seed: 2,
        },
        QuerySpec::GreedyBaseline,
        QuerySpec::IterCover {
            delta: 0.25,
            seed: 4,
        },
        QuerySpec::PartialCover {
            epsilon: 0.4,
            delta: 1.0,
            seed: 6,
        },
        QuerySpec::IterCover {
            delta: 1.0,
            seed: 8,
        },
    ];
    let (outcomes, metrics) = service.run_batch(&specs);
    assert_eq!(outcomes.len(), specs.len());
    for (i, outcome) in outcomes.iter().enumerate() {
        assert_eq!(outcome.spec, specs[i], "outcome order is submission order");
        assert_matches_solo(outcome, &inst.system, &format!("query {i} ({})", specs[i]));
    }
    // One shared walk per epoch: the group costs the max logical pass
    // count, not the sum.
    let max_passes = outcomes.iter().map(|o| o.logical_passes).max().unwrap();
    let sum_passes: usize = outcomes.iter().map(|o| o.logical_passes).sum();
    assert_eq!(metrics.physical_scans, max_passes);
    assert!(metrics.physical_scans < sum_passes);
}

#[test]
fn single_threaded_and_threaded_epochs_agree() {
    let inst = gen::planted(256, 512, 8, 3);
    let specs: Vec<QuerySpec> = (0..6)
        .map(|i| QuerySpec::IterCover {
            delta: 0.5,
            seed: i,
        })
        .collect();
    let threaded = ServiceBuilder::new()
        .config(ServiceConfig {
            workers: 4,
            ..Default::default()
        })
        .tenant("default", inst.system.clone())
        .build();
    let sequential = ServiceBuilder::new()
        .config(ServiceConfig {
            workers: 1,
            ..Default::default()
        })
        .tenant("default", inst.system.clone())
        .build();
    let (a, _) = threaded.run_batch(&specs);
    let (b, _) = sequential.run_batch(&specs);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.cover, y.cover);
        assert_eq!(x.logical_passes, y.logical_passes);
        assert_eq!(x.space_words, y.space_words);
    }
}

#[test]
fn single_set_shards_under_heavy_stealing_agree_with_solo() {
    // The smallest possible shard (one set) maximises work-stealing
    // interleavings across the worker pool; every observable must
    // still match the solo run bit for bit.
    let inst = gen::planted_noisy(300, 600, 10, 9);
    let service = ServiceBuilder::new()
        .config(ServiceConfig {
            workers: 8,
            shard_size: 1,
            ..Default::default()
        })
        .tenant("default", inst.system.clone())
        .build();
    let specs = vec![
        QuerySpec::IterCover {
            delta: 0.5,
            seed: 1,
        },
        QuerySpec::PartialCover {
            epsilon: 0.1,
            delta: 0.5,
            seed: 2,
        },
        QuerySpec::GreedyBaseline,
        QuerySpec::IterCover {
            delta: 0.25,
            seed: 4,
        },
    ];
    let (outcomes, _) = service.run_batch(&specs);
    for (i, outcome) in outcomes.iter().enumerate() {
        assert_matches_solo(outcome, &inst.system, &format!("query {i} ({})", specs[i]));
    }
}

#[test]
fn mid_stream_admission_and_cache_hits_preserve_solo_observables() {
    let inst = gen::planted_noisy(300, 600, 10, 9);
    let specs = [
        QuerySpec::IterCover {
            delta: 0.5,
            seed: 1,
        },
        // Staggered into the head's first scan: a mid-stream join.
        QuerySpec::PartialCover {
            epsilon: 0.1,
            delta: 0.5,
            seed: 2,
        },
        // Submitted back-to-back with the joiner: after the first
        // join the scheduler drains without blocking, so this one
        // lands on whichever side of the scan the race yields —
        // mid-stream or boundary, the observables must be solo.
        QuerySpec::GreedyBaseline,
        // Repeat of the first spec: once query 0 retires, this is a
        // cache hit and must still report the solo observables.
        QuerySpec::IterCover {
            delta: 0.5,
            seed: 1,
        },
    ];
    // The stagger races the scheduler thread (a starved runner can let
    // the submissions land at the epoch boundary instead); retry a
    // couple of times rather than flake. Every attempt uses a fresh
    // service, so the solo-equivalence assertions below hold on
    // whichever attempt is accepted.
    let (outcomes, metrics) = (0..3)
        .find_map(|attempt| {
            let service = ServiceBuilder::new()
                .config(ServiceConfig {
                    // Catch the staggered submissions below inside the
                    // first scan of the fresh epoch group.
                    admission_window: std::time::Duration::from_secs(30),
                    ..Default::default()
                })
                .tenant("default", inst.system.clone())
                .build();
            let (outcomes, metrics) = service.serve(|handle| {
                let head = handle.submit(specs[0]).expect("open");
                std::thread::sleep(std::time::Duration::from_millis(150));
                let joiner = handle.submit(specs[1]).expect("open");
                let straggler = handle.submit(specs[2]).expect("open");
                let mut outcomes = vec![head.wait().expect("served")];
                outcomes.push(joiner.wait().expect("served"));
                outcomes.push(straggler.wait().expect("served"));
                // The repeat goes in only after query 0 completed, so
                // it is answered from the cache.
                outcomes.push(
                    handle
                        .submit(specs[3])
                        .expect("open")
                        .wait()
                        .expect("served"),
                );
                outcomes
            });
            if metrics.mid_stream_admissions >= 1 {
                Some((outcomes, metrics))
            } else {
                eprintln!("attempt {attempt}: scheduler outpaced, no mid-stream join");
                None
            }
        })
        .expect("a staggered query rode the in-flight scan in one of three attempts");
    assert_eq!(metrics.cache_hits, 1, "the repeat hit the cache");
    for (i, outcome) in outcomes.iter().enumerate() {
        assert_matches_solo(outcome, &inst.system, &format!("query {i} ({})", specs[i]));
    }
    assert!(outcomes[3].cached);
    assert!(!outcomes[0].cached);
}

#[test]
fn telemetry_recording_never_perturbs_observables() {
    // Telemetry is observational only: the same batch with the gate off
    // and on must produce bit-identical covers, pass counts, and space
    // peaks, and each must match the solo run.
    let inst = gen::planted_noisy(300, 600, 10, 9);
    let specs = vec![
        QuerySpec::IterCover {
            delta: 0.5,
            seed: 1,
        },
        QuerySpec::PartialCover {
            epsilon: 0.1,
            delta: 0.5,
            seed: 2,
        },
        QuerySpec::GreedyBaseline,
        QuerySpec::IterCover {
            delta: 0.25,
            seed: 4,
        },
    ];
    let run = || {
        let service = ServiceBuilder::new()
            .config(ServiceConfig::default())
            .tenant("default", inst.system.clone())
            .build();
        service.run_batch(&specs).0
    };
    let quiet = run();
    let watched = {
        // The gate is process-global: serialize with other
        // gate-flipping tests while it is on.
        let _hold = sc_telemetry::test_hold();
        let was = sc_telemetry::enabled();
        sc_telemetry::set_enabled(true);
        let outcomes = run();
        sc_telemetry::set_enabled(was);
        outcomes
    };
    for (i, (q, w)) in quiet.iter().zip(&watched).enumerate() {
        assert_eq!(q.cover, w.cover, "query {i}: telemetry changed the cover");
        assert_eq!(q.logical_passes, w.logical_passes, "query {i}");
        assert_eq!(q.space_words, w.space_words, "query {i}");
        assert_eq!(q.covered, w.covered, "query {i}");
        assert_matches_solo(w, &inst.system, &format!("watched query {i}"));
    }
}

#[test]
fn uncoverable_instances_fail_cleanly() {
    let system = SetSystem::from_sets(4, vec![vec![0, 1], vec![1, 2]]);
    let service = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .tenant("default", system.clone())
        .build();
    let (outcomes, _) = service.run_batch(&[
        QuerySpec::IterCover {
            delta: 0.5,
            seed: 0,
        },
        QuerySpec::PartialCover {
            epsilon: 0.3,
            delta: 0.5,
            seed: 0,
        },
    ]);
    assert!(!outcomes[0].goal_met(), "full cover cannot exist");
    assert_matches_solo(&outcomes[0], &system, "uncoverable full");
    // Whether the ε-partial run reaches its goal here depends on the
    // sampled elements (a sampled uncoverable element aborts a guess);
    // what matters is that the service reproduces the solo behaviour.
    assert_matches_solo(&outcomes[1], &system, "uncoverable partial");
    let (solo_cover, _, _) = solo(&outcomes[1].spec, &system);
    assert_eq!(outcomes[1].cover, solo_cover);
}
