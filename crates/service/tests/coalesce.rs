//! In-flight query coalescing: K identical concurrent queries must run
//! as ONE job — one job's per-scan CPU, K replies, one cache insert —
//! with every reply carrying the bit-identical solo observables, and
//! the cache always taking precedence over coalescing.

use sc_core::{IterSetCover, IterSetCoverConfig};
use sc_service::{CachedAnswer, OutcomeCache, QuerySpec, ServiceBuilder, ServiceConfig};
use sc_setsystem::gen;
use sc_stream::run_reported;
use std::sync::Arc;
use std::time::Duration;

fn iter(seed: u64) -> QuerySpec {
    QuerySpec::IterCover { delta: 0.5, seed }
}

fn coalescing() -> ServiceConfig {
    ServiceConfig {
        coalesce: true,
        ..Default::default()
    }
}

#[test]
fn k_identical_inflight_queries_run_as_one_job() {
    let inst = gen::planted(512, 1024, 16, 11);
    let mut solo_alg = IterSetCover::new(IterSetCoverConfig {
        delta: 0.5,
        seed: 7,
        ..Default::default()
    });
    let solo = run_reported(&mut solo_alg, &inst.system);

    let k = 8;
    let service = ServiceBuilder::new()
        .config(coalescing())
        .tenant("default", inst.system.clone())
        .build();
    let (outcomes, metrics) = service.run_batch(&vec![iter(7); k]);

    // One job's per-scan CPU: a single job ran, everyone else rode it.
    assert_eq!(metrics.jobs, 1, "K identical queries must run as one job");
    assert_eq!(metrics.coalesced, k - 1);
    assert_eq!(metrics.cache_hits, 0);
    assert_eq!(
        metrics.cache_misses, 1,
        "only the leader looked up as a job"
    );
    assert_eq!(metrics.queries_completed, k);
    assert_eq!(
        metrics.physical_scans, solo.passes,
        "the group costs one query's physical scans"
    );
    // One cache insert: the job retired once, so exactly one entry.
    assert_eq!(service.cache().len(), 1);

    // K replies, each bit-identical to the solo run.
    assert_eq!(outcomes.len(), k);
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(o.id, i as u64, "outcomes stay in submission order");
        assert_eq!(o.cover, solo.cover, "query {i}: cover differs from solo");
        assert_eq!(o.logical_passes, solo.passes);
        assert_eq!(o.space_words, solo.space_words);
        assert!(o.goal_met());
        assert!(!o.cached);
        assert_eq!(o.coalesced, i > 0, "only followers are flagged coalesced");
    }
}

#[test]
fn distinct_specs_coalesce_per_group() {
    let inst = gen::planted(256, 512, 8, 5);
    let service = ServiceBuilder::new()
        .config(coalescing())
        .tenant("default", inst.system.clone())
        .build();
    // 3 groups × 4 duplicates, interleaved the way concurrent clients
    // would submit them.
    let specs: Vec<QuerySpec> = (0..12u64).map(|i| iter(i % 3)).collect();
    let (outcomes, metrics) = service.run_batch(&specs);
    assert_eq!(metrics.jobs, 3, "one job per distinct spec");
    assert_eq!(metrics.coalesced, 9);
    assert!(outcomes.iter().all(|o| o.goal_met()));
    // Duplicates mirror their group's leader exactly.
    for (i, o) in outcomes.iter().enumerate() {
        let leader = &outcomes[i % 3];
        assert_eq!(o.cover, leader.cover);
        assert_eq!(o.logical_passes, leader.logical_passes);
        assert_eq!(o.space_words, leader.space_words);
    }
    // Scan sharing still holds across the three leaders.
    let max_passes = outcomes.iter().map(|o| o.logical_passes).max().unwrap();
    assert_eq!(metrics.physical_scans, max_passes);
}

#[test]
fn mid_stream_identical_joiner_coalesces_never_double_runs() {
    let inst = gen::planted(512, 1024, 16, 11);
    let mut solo_alg = IterSetCover::new(IterSetCoverConfig {
        delta: 0.5,
        seed: 7,
        ..Default::default()
    });
    let solo = run_reported(&mut solo_alg, &inst.system);

    let service = ServiceBuilder::new()
        .config(ServiceConfig {
            coalesce: true,
            // Hold the head's first scan open so the duplicate below
            // arrives while the head's job is in flight.
            admission_window: Duration::from_secs(30),
            ..Default::default()
        })
        .tenant("default", inst.system.clone())
        .build();
    let ((a, b), metrics) = service.serve(|handle| {
        let ta = handle.submit(iter(7)).expect("open");
        std::thread::sleep(Duration::from_millis(100));
        // Identical spec while the first is in flight: must coalesce
        // (or, had the scheduler not started yet, coalesce at the
        // boundary) — in no interleaving may it run as a second job.
        let tb = handle.submit(iter(7)).expect("open");
        (ta.wait().expect("served"), tb.wait().expect("served"))
    });
    assert_eq!(metrics.jobs, 1, "the duplicate never runs as its own job");
    assert_eq!(metrics.coalesced, 1);
    assert_eq!(metrics.cache_hits, 0, "nothing had retired to hit");
    assert_eq!(metrics.queries_completed, 2);
    assert_eq!(metrics.physical_scans, solo.passes);
    for o in [&a, &b] {
        assert_eq!(o.cover, solo.cover);
        assert_eq!(o.logical_passes, solo.passes);
        assert_eq!(o.space_words, solo.space_words);
    }
    assert!(!a.coalesced);
    assert!(b.coalesced);
}

#[test]
fn cache_hit_takes_precedence_over_coalescing() {
    let inst = gen::planted(256, 512, 8, 3);
    let cache = Arc::new(OutcomeCache::new(16));
    let service = ServiceBuilder::new()
        .config(coalescing())
        .shared_cache(cache.clone())
        .tenant("default", inst.system.clone())
        .build();

    let ((), metrics) = service.serve(|handle| {
        // Leader admitted on a cache miss; the window below would hold
        // its scan open, but no window is configured, so it just runs.
        let ta = handle.submit(iter(9)).expect("open");
        let first = ta.wait().expect("served");
        assert!(!first.cached);
        // The entry now exists; an identical query must be answered
        // from the cache in zero scans, not coalesced onto anything.
        let tb = handle.submit(iter(9)).expect("open");
        let second = tb.wait().expect("served");
        assert!(second.cached, "a retired answer beats every other path");
        assert!(!second.coalesced);
        assert_eq!(second.cover, first.cover);
    });
    assert_eq!(metrics.cache_hits, 1);
    assert_eq!(metrics.coalesced, 0);
    assert_eq!(metrics.jobs, 1);
}

#[test]
fn shared_cache_answer_beats_an_inflight_identical_job() {
    // The only way an identical spec can be BOTH in flight and in the
    // cache is a cache shared with another service (the in-flight job
    // itself required a miss to start). Stage exactly that and pin the
    // precedence: the cached answer wins, the in-flight job is not
    // grown.
    let inst = gen::planted(512, 1024, 16, 11);
    let cache = Arc::new(OutcomeCache::new(16));
    let service = ServiceBuilder::new()
        .config(ServiceConfig {
            coalesce: true,
            // Keep the head's first scan open so the job is still in
            // flight when the duplicate arrives. A cache hit does not
            // close the window (only joiners and followers do), so the
            // scheduler waits out the rest of it — keep it short.
            admission_window: Duration::from_millis(1500),
            ..Default::default()
        })
        .shared_cache(cache.clone())
        .tenant("default", inst.system.clone())
        .build();
    let mut solo_alg = IterSetCover::new(IterSetCoverConfig {
        delta: 0.5,
        seed: 7,
        ..Default::default()
    });
    let solo = run_reported(&mut solo_alg, &inst.system);

    let ((a, b), metrics) = service.serve(|handle| {
        let ta = handle.submit(iter(7)).expect("open");
        std::thread::sleep(Duration::from_millis(100));
        // Another service (here: the test) publishes the answer into
        // the shared cache while our job is mid-flight.
        let generation = service.generation();
        cache.insert(
            generation.tenant.id(),
            generation.fingerprint,
            generation.system.universe(),
            generation.system.num_sets(),
            &iter(7),
            CachedAnswer {
                cover: solo.cover.clone(),
                covered: generation.system.universe(),
                required: generation.system.universe(),
                logical_passes: solo.passes,
                space_words: solo.space_words,
            },
        );
        let tb = handle.submit(iter(7)).expect("open");
        (ta.wait().expect("served"), tb.wait().expect("served"))
    });
    assert!(b.cached, "the shared-cache answer wins over coalescing");
    assert!(!b.coalesced);
    assert_eq!(b.cover, solo.cover);
    assert_eq!(metrics.coalesced, 0);
    assert_eq!(metrics.jobs, 1);
    assert_eq!(
        a.cover, solo.cover,
        "the in-flight job still completes solo"
    );
}

#[test]
fn coalescing_is_off_by_default() {
    let inst = gen::planted(256, 512, 8, 5);
    // Cache off so repeats cannot be answered that way either: every
    // copy must run as its own job, exactly the pre-coalescing path.
    let service = ServiceBuilder::new()
        .config(ServiceConfig {
            cache_capacity: 0,
            ..Default::default()
        })
        .tenant("default", inst.system.clone())
        .build();
    let (outcomes, metrics) = service.run_batch(&[iter(1); 4]);
    assert_eq!(metrics.jobs, 4);
    assert_eq!(metrics.coalesced, 0);
    assert!(outcomes.iter().all(|o| !o.coalesced));
    // Scan sharing (not coalescing) still makes the group cheap.
    assert_eq!(metrics.physical_scans, outcomes[0].logical_passes);
}

#[test]
fn telemetry_ledger_reconciles_with_coalescing_metrics() {
    // The gate, counters, and journal are process-global: hold the
    // telemetry lock while the gate is on. Tests from this binary that
    // overlap the window are recorded too, so the global deltas are
    // asserted as lower bounds of this run's contribution, while the
    // accounting identity is asserted exactly on the run's own
    // ServiceMetrics.
    let _hold = sc_telemetry::test_hold();
    let was = sc_telemetry::enabled();
    sc_telemetry::set_enabled(true);
    let before: std::collections::BTreeMap<&str, u64> =
        sc_telemetry::registered_counters().into_iter().collect();

    let inst = gen::planted(256, 512, 8, 5);
    let service = ServiceBuilder::new()
        .config(coalescing())
        .tenant("default", inst.system.clone())
        .build();
    let specs: Vec<QuerySpec> = (0..12u64).map(|i| iter(i % 3)).collect();
    // First wave: 3 leaders + 9 followers. Second wave: all 12 answered
    // from the cache — every completion class is exercised.
    let (_, wave1) = service.run_batch(&specs);
    let (_, wave2) = service.run_batch(&specs);

    let after: std::collections::BTreeMap<&str, u64> =
        sc_telemetry::registered_counters().into_iter().collect();
    sc_telemetry::set_enabled(was);

    for (label, m) in [("wave 1", &wave1), ("wave 2", &wave2)] {
        assert_eq!(
            m.queries_completed,
            m.jobs + m.cache_hits + m.coalesced,
            "{label}: every completion is exactly one of job / cache hit / follower"
        );
    }
    assert_eq!((wave1.jobs, wave1.coalesced, wave1.cache_hits), (3, 9, 0));
    assert_eq!((wave2.jobs, wave2.coalesced, wave2.cache_hits), (0, 0, 12));

    let delta =
        |name: &str| after.get(name).copied().unwrap_or(0) - before.get(name).copied().unwrap_or(0);
    let runs = |f: fn(&sc_service::ServiceMetrics) -> usize| (f(&wave1) + f(&wave2)) as u64;
    assert!(delta("sc_queries_submitted_total") >= runs(|m| m.queries_completed));
    assert!(delta("sc_queries_completed_total") >= runs(|m| m.queries_completed));
    assert!(delta("sc_query_jobs_total") >= runs(|m| m.jobs));
    assert!(delta("sc_coalesced_total") >= runs(|m| m.coalesced));
    assert!(delta("sc_cache_hits_total") >= runs(|m| m.cache_hits));
}

#[test]
fn followers_beyond_max_inflight_do_not_occupy_slots() {
    let inst = gen::planted(256, 512, 8, 5);
    let service = ServiceBuilder::new()
        .config(ServiceConfig {
            max_inflight: 2,
            coalesce: true,
            cache_capacity: 0,
            ..Default::default()
        })
        .tenant("default", inst.system.clone())
        .build();
    // Two distinct leaders fill both slots; every duplicate coalesces
    // without needing a slot of its own, so the whole batch clears in
    // one admission wave.
    let specs: Vec<QuerySpec> = (0..10u64).map(|i| iter(i % 2)).collect();
    let (outcomes, metrics) = service.run_batch(&specs);
    assert_eq!(metrics.jobs, 2);
    assert_eq!(metrics.coalesced, 8);
    assert!(metrics.max_inflight_seen <= 2);
    assert!(outcomes.iter().all(|o| o.goal_met()));
}
