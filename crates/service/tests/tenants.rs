//! Multi-tenant serving invariants.
//!
//! One process hosts many named repositories, but tenancy must be
//! invisible to any single tenant's clients: every query answers
//! bit-identically to a solo service over that tenant's repository,
//! identical repositories under different tenants never share cache
//! entries, a hot tenant cannot starve a cold one, and a hot swap of
//! one tenant leaves every other tenant's in-flight work untouched.

use sc_core::baselines::StoreAllGreedy;
use sc_core::partial::{run_partial, PartialIterSetCover};
use sc_core::{IterSetCover, IterSetCoverConfig};
use sc_service::{InterleaveMode, QuerySpec, ServiceBuilder};
use sc_setsystem::{gen, SetSystem};
use sc_stream::run_reported;

/// (cover, logical passes, space words) of a query run solo.
fn solo(spec: &QuerySpec, system: &SetSystem) -> (Vec<u32>, usize, usize) {
    match *spec {
        QuerySpec::IterCover { delta, seed } => {
            let mut alg = IterSetCover::new(IterSetCoverConfig {
                delta,
                seed,
                ..Default::default()
            });
            let r = run_reported(&mut alg, system);
            (r.cover, r.passes, r.space_words)
        }
        QuerySpec::PartialCover {
            epsilon,
            delta,
            seed,
        } => {
            let mut alg = PartialIterSetCover::new(IterSetCoverConfig {
                delta,
                seed,
                ..Default::default()
            });
            let r = run_partial(&mut alg, system, epsilon);
            (r.cover, r.passes, r.space_words)
        }
        QuerySpec::GreedyBaseline => {
            let r = run_reported(&mut StoreAllGreedy, system);
            (r.cover, r.passes, r.space_words)
        }
    }
}

/// The bit-identity suite body, run once per scheduling granularity:
/// whichever way the fairness gate slices execution — exclusive epochs
/// or interleaved `(tenant, shard)` units — every answer must match a
/// solo run exactly.
fn bit_identity_under_interleaved_load(mode: InterleaveMode) {
    let alpha = gen::planted(256, 512, 8, 11);
    let beta = gen::planted(192, 384, 6, 22);
    let specs: Vec<QuerySpec> = (0..4)
        .flat_map(|seed| {
            [
                QuerySpec::IterCover { delta: 0.5, seed },
                QuerySpec::PartialCover {
                    epsilon: 0.1,
                    delta: 0.5,
                    seed,
                },
                QuerySpec::GreedyBaseline,
            ]
        })
        .collect();
    let service = ServiceBuilder::new()
        .tenant("alpha", alpha.system.clone())
        .tenant("beta", beta.system.clone())
        .interleave(mode)
        .build();
    let (answered, _metrics) = service.serve(|handle| {
        let beta_handle = handle.with_tenant("beta").expect("tenant exists");
        // Interleave the two tenants' submissions so their lanes run
        // their epochs concurrently.
        let tickets: Vec<_> = specs
            .iter()
            .flat_map(|spec| {
                [
                    (0usize, handle.submit(*spec).expect("submit alpha")),
                    (1usize, beta_handle.submit(*spec).expect("submit beta")),
                ]
            })
            .collect();
        tickets
            .into_iter()
            .map(|(lane, t)| (lane, t.wait().expect("answered")))
            .collect::<Vec<_>>()
    });
    for (lane, outcome) in answered {
        let (name, system) = if lane == 0 {
            ("alpha", &alpha.system)
        } else {
            ("beta", &beta.system)
        };
        let (cover, passes, space) = solo(&outcome.spec, system);
        assert_eq!(&*outcome.tenant, name);
        assert_eq!(outcome.cover, cover, "{name}: {:?}", outcome.spec);
        assert_eq!(outcome.logical_passes, passes, "{name}: {:?}", outcome.spec);
        assert_eq!(outcome.space_words, space, "{name}: {:?}", outcome.spec);
    }
}

#[test]
fn each_tenant_answers_bit_identically_to_solo_under_shard_interleaving() {
    bit_identity_under_interleaved_load(InterleaveMode::Shard);
}

#[test]
fn each_tenant_answers_bit_identically_to_solo_under_epoch_granting() {
    bit_identity_under_interleaved_load(InterleaveMode::Epoch);
}

#[test]
fn identical_repositories_under_different_tenants_never_share_cache_entries() {
    // Two tenants load byte-identical repositories: a cache entry
    // retired under one must not answer the other (the partition key
    // is the tenant id, not just the content fingerprint).
    let inst = gen::planted(128, 256, 8, 5);
    let spec = QuerySpec::IterCover {
        delta: 0.5,
        seed: 3,
    };
    let service = ServiceBuilder::new()
        .tenant("left", inst.system.clone())
        .tenant("right", inst.system.clone())
        .build();
    let (_, metrics) = service.serve(|handle| {
        let right = handle.with_tenant("right").expect("tenant exists");
        let first = handle.submit(spec).expect("submit").wait().expect("answer");
        assert!(!first.cached, "cold cache on the left tenant");
        // Same bytes, same fingerprint — but the right tenant's cache
        // partition is its own, so this must run, not hit.
        let twin = right.submit(spec).expect("submit").wait().expect("answer");
        assert!(
            !twin.cached,
            "a twin tenant's identical repository must not hit the left tenant's entries"
        );
        // Each tenant *does* hit its own partition on a repeat.
        let repeat = handle.submit(spec).expect("submit").wait().expect("answer");
        assert!(repeat.cached, "the left tenant re-hits its own entry");
    });
    assert_eq!(metrics.jobs, 2, "one real job per tenant");
    assert_eq!(metrics.cache_misses, 2);
    assert_eq!(metrics.cache_hits, 1);
}

#[test]
fn a_hot_tenant_cannot_starve_a_cold_one() {
    // The hot tenant floods its lane with multi-pass jobs; the cold
    // tenant asks once, mid-flood. The fairness gate must grant the
    // cold lane's epochs while the hot backlog is still draining.
    let hot_inst = gen::planted(1024, 2048, 16, 7);
    let cold_inst = gen::planted(64, 128, 4, 9);
    const HOT_TOTAL: usize = 48;
    let service = ServiceBuilder::new()
        .tenant_with_quota("hot", hot_inst.system, 8)
        .tenant("cold", cold_inst.system)
        .build();
    let hot_seen_at_cold_done = service.serve(|handle| {
        let cold = handle.with_tenant("cold").expect("tenant exists");
        let hot_tickets: Vec<_> = (0..HOT_TOTAL)
            .map(|seed| {
                handle
                    .submit(QuerySpec::IterCover {
                        delta: 0.5,
                        seed: seed as u64,
                    })
                    .expect("submit hot")
            })
            .collect();
        let cold_outcome = cold
            .submit(QuerySpec::GreedyBaseline)
            .expect("submit cold")
            .wait()
            .expect("cold answered");
        assert!(cold_outcome.goal_met());
        // The hot tenant's live counter at the instant the cold answer
        // arrived: how much of the flood had completed.
        let (hot_completed, _, _, _, _) = handle
            .tenants()
            .get("hot")
            .expect("tenant exists")
            .meta()
            .counters()
            .snapshot();
        for t in hot_tickets {
            assert!(t.wait().expect("hot answered").goal_met());
        }
        hot_completed
    });
    let at_cold_done = hot_seen_at_cold_done.0;
    assert!(
        (at_cold_done as usize) < HOT_TOTAL,
        "the cold query waited out the whole hot flood ({at_cold_done}/{HOT_TOTAL} hot \
         queries had completed first)"
    );
}

#[test]
fn a_hot_swap_of_one_tenant_leaves_the_other_untouched() {
    let stay_inst = gen::planted(512, 1024, 16, 31);
    let swap_old = gen::planted(128, 256, 8, 1);
    let swap_new = gen::planted(128, 256, 8, 2);
    let service = ServiceBuilder::new()
        .tenant("stays", stay_inst.system)
        .tenant("swaps", swap_old.system)
        .build();
    let (_, metrics) = service.serve(|handle| {
        let swaps = handle.with_tenant("swaps").expect("tenant exists");
        // Keep the untouched tenant's lane busy across the swap.
        let busy: Vec<_> = (0..16)
            .map(|seed| {
                handle
                    .submit(QuerySpec::IterCover { delta: 0.5, seed })
                    .expect("submit")
            })
            .collect();
        let swapped_to = swaps
            .reload(swap_new.system.clone())
            .expect("reload")
            .wait()
            .expect("swap acknowledged");
        assert_eq!(swapped_to, 2, "the swapped tenant advanced a generation");
        for t in busy {
            let outcome = t.wait().expect("answered");
            assert_eq!(
                outcome.generation, 1,
                "the untouched tenant's in-flight work stays on its generation"
            );
            assert_eq!(&*outcome.tenant, "stays");
        }
    });
    assert_eq!(metrics.reloads, 1);
    assert_eq!(service.tenants().get("swaps").unwrap().generation().id, 2);
    assert_eq!(service.tenants().get("stays").unwrap().generation().id, 1);
}

#[test]
fn a_tenant_quota_caps_its_inflight_occupancy() {
    let inst = gen::planted(256, 512, 8, 13);
    let service = ServiceBuilder::new()
        .tenant_with_quota("narrow", inst.system, 2)
        .build();
    let (_, metrics) = service.serve(|handle| {
        let tickets: Vec<_> = (0..8)
            .map(|seed| {
                handle
                    .submit(QuerySpec::IterCover { delta: 0.5, seed })
                    .expect("submit")
            })
            .collect();
        for t in tickets {
            assert!(t.wait().expect("answered").goal_met());
        }
    });
    assert!(
        metrics.max_inflight_seen <= 2,
        "quota 2 exceeded: {} jobs were inflight at once",
        metrics.max_inflight_seen
    );
}
