//! Compact binary serialisation of set systems, with a streaming
//! reader.
//!
//! The text format ([`crate::io`]) is diff-friendly but costs ~7 bytes
//! per element id; at the `mn`-word scales the paper's lower bounds talk
//! about, repository files get large. This module defines `SCB1`, a
//! delta-varint binary format that stores a sorted set in roughly one
//! byte per id, and a [`BinaryReader`] that scans a repository **one
//! record at a time in O(max |r|) memory** — the on-disk analogue of the
//! model's sequential pass, used by `sctool` to inspect and convert
//! workloads far larger than RAM would allow.
//!
//! ## Layout
//!
//! ```text
//! magic   "SCB1\n"
//! header  varint universe, varint num_sets, u32 fnv(header)
//! records num_sets × [ 'S' | varint len | delta-varint ids | u32 fnv ]
//! footer  optional 'O' varint count, varint set ids     (planted cover)
//!         optional 'L' varint len, utf-8 bytes          (label)
//!         'E', u32 fnv(footer sections)                 (end marker)
//! ```
//!
//! All varints are LEB128. Element ids within a record are strictly
//! increasing (the [`SetSystem`] invariant) and stored as gaps:
//! `id₀, id₁−id₀, id₂−id₁, …`. The header, every record, and the footer
//! each carry an FNV-1a checksum of their payload bytes, so *any*
//! flipped bit fails loudly at the damaged region instead of silently
//! perturbing an experiment; the end marker catches truncation.

use crate::{ElemId, Instance, SetId, SetSystem};
use std::fmt;
use std::io::{BufRead, Read, Write};

pub(crate) const MAGIC: &[u8; 5] = b"SCB1\n";

/// A failure while reading the binary format.
#[derive(Debug)]
pub enum BinError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The stream does not start with the `SCB1` magic.
    BadMagic,
    /// Structural damage, with byte-offset context where known.
    Corrupt {
        /// Which record was being read (`None` for header/footer).
        record: Option<usize>,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "I/O error: {e}"),
            BinError::BadMagic => write!(f, "not an SCB1 file (bad magic)"),
            BinError::Corrupt {
                record: Some(r),
                message,
            } => {
                write!(f, "corrupt record {r}: {message}")
            }
            BinError::Corrupt {
                record: None,
                message,
            } => write!(f, "corrupt file: {message}"),
        }
    }
}

impl std::error::Error for BinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BinError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BinError {
    fn from(e: std::io::Error) -> Self {
        BinError::Io(e)
    }
}

fn corrupt(record: Option<usize>, message: impl Into<String>) -> BinError {
    BinError::Corrupt {
        record,
        message: message.into(),
    }
}

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> std::io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R, record: Option<usize>) -> Result<u64, BinError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                corrupt(record, "truncated varint")
            } else {
                BinError::Io(e)
            }
        })?;
        if shift >= 63 && byte[0] > 1 {
            return Err(corrupt(record, "varint overflows u64"));
        }
        v |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    (h ^ (h >> 32)) as u32
}

/// Writes an instance in the `SCB1` binary format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_instance_binary<W: Write>(w: &mut W, inst: &Instance) -> std::io::Result<()> {
    let system = &inst.system;
    w.write_all(MAGIC)?;
    let mut header: Vec<u8> = Vec::new();
    write_varint(&mut header, system.universe() as u64)?;
    write_varint(&mut header, system.num_sets() as u64)?;
    w.write_all(&header)?;
    w.write_all(&fnv1a(&header).to_le_bytes())?;
    let mut payload: Vec<u8> = Vec::new();
    for (_, elems) in system.iter() {
        payload.clear();
        write_varint(&mut payload, elems.len() as u64)?;
        let mut prev = 0u64;
        for (i, &e) in elems.iter().enumerate() {
            let v = u64::from(e);
            let gap = if i == 0 { v } else { v - prev };
            write_varint(&mut payload, gap)?;
            prev = v;
        }
        w.write_all(b"S")?;
        w.write_all(&payload)?;
        w.write_all(&fnv1a(&payload).to_le_bytes())?;
    }
    let mut footer: Vec<u8> = Vec::new();
    if let Some(p) = &inst.planted {
        footer.write_all(b"O")?;
        write_varint(&mut footer, p.len() as u64)?;
        for &id in p {
            write_varint(&mut footer, u64::from(id))?;
        }
    }
    if !inst.label.is_empty() {
        footer.write_all(b"L")?;
        write_varint(&mut footer, inst.label.len() as u64)?;
        footer.write_all(inst.label.as_bytes())?;
    }
    w.write_all(&footer)?;
    w.write_all(b"E")?;
    w.write_all(&fnv1a(&footer).to_le_bytes())
}

/// A bounded-memory scanner over an `SCB1` stream: the on-disk analogue
/// of one sequential pass.
///
/// Construction reads the header; [`next_set`](BinaryReader::next_set)
/// then yields one record at a time into a caller-supplied buffer —
/// peak memory is `O(max |r|)` regardless of the repository size. After
/// the last record, [`finish`](BinaryReader::finish) parses the footer
/// and returns the planted cover and label.
///
/// # Examples
///
/// ```
/// use sc_setsystem::{binary, gen};
///
/// let inst = gen::planted(64, 32, 4, 7);
/// let mut bytes = Vec::new();
/// binary::write_instance_binary(&mut bytes, &inst).unwrap();
///
/// let mut reader = binary::BinaryReader::new(&bytes[..]).unwrap();
/// assert_eq!(reader.universe(), 64);
/// let mut buf = Vec::new();
/// let mut total = 0usize;
/// while reader.next_set(&mut buf).unwrap().is_some() {
///     total += buf.len();
/// }
/// assert_eq!(total, inst.system.total_size());
/// ```
#[derive(Debug)]
pub struct BinaryReader<R: BufRead> {
    inner: R,
    universe: usize,
    num_sets: usize,
    next_record: usize,
}

impl<R: BufRead> BinaryReader<R> {
    /// Opens the stream and validates the magic and header.
    ///
    /// # Errors
    ///
    /// [`BinError::BadMagic`] if the stream is not `SCB1`;
    /// [`BinError::Corrupt`] for a damaged header.
    pub fn new(mut inner: R) -> Result<Self, BinError> {
        let mut magic = [0u8; 5];
        inner
            .read_exact(&mut magic)
            .map_err(|_| BinError::BadMagic)?;
        if &magic != MAGIC {
            return Err(BinError::BadMagic);
        }
        let mut header: Vec<u8> = Vec::new();
        let universe = {
            let mut tee = Tee {
                inner: &mut inner,
                copy: &mut header,
            };
            read_varint(&mut tee, None)? as usize
        };
        let num_sets = {
            let mut tee = Tee {
                inner: &mut inner,
                copy: &mut header,
            };
            read_varint(&mut tee, None)? as usize
        };
        let mut crc = [0u8; 4];
        inner
            .read_exact(&mut crc)
            .map_err(|_| corrupt(None, "truncated header checksum"))?;
        if u32::from_le_bytes(crc) != fnv1a(&header) {
            return Err(corrupt(None, "header checksum mismatch"));
        }
        Ok(Self {
            inner,
            universe,
            num_sets,
            next_record: 0,
        })
    }

    /// Ground set size from the header.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Declared number of sets from the header.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Reads the next set record into `buf` (cleared first), returning
    /// its id, or `None` once all declared records have been read.
    ///
    /// # Errors
    ///
    /// [`BinError::Corrupt`] on a bad tag, checksum mismatch,
    /// non-monotone ids, out-of-range ids, or truncation.
    pub fn next_set(&mut self, buf: &mut Vec<ElemId>) -> Result<Option<SetId>, BinError> {
        if self.next_record >= self.num_sets {
            return Ok(None);
        }
        let record = self.next_record;
        let mut tag = [0u8; 1];
        self.inner
            .read_exact(&mut tag)
            .map_err(|_| corrupt(Some(record), "truncated before record tag"))?;
        if tag[0] != b'S' {
            return Err(corrupt(
                Some(record),
                format!("expected 'S' tag, found {:#04x}", tag[0]),
            ));
        }
        // Re-serialise the payload while decoding so the checksum can be
        // verified without a second buffer pass.
        let mut payload: Vec<u8> = Vec::new();
        let len = {
            let mut tee = Tee {
                inner: &mut self.inner,
                copy: &mut payload,
            };
            read_varint(&mut tee, Some(record))? as usize
        };
        if len > self.universe {
            return Err(corrupt(
                Some(record),
                format!("set of {len} ids exceeds universe {}", self.universe),
            ));
        }
        buf.clear();
        let mut prev: u64 = 0;
        for i in 0..len {
            let gap = {
                let mut tee = Tee {
                    inner: &mut self.inner,
                    copy: &mut payload,
                };
                read_varint(&mut tee, Some(record))?
            };
            if i > 0 && gap == 0 {
                return Err(corrupt(Some(record), "non-increasing element ids"));
            }
            let v = if i == 0 { gap } else { prev + gap };
            if v >= self.universe as u64 {
                return Err(corrupt(
                    Some(record),
                    format!("element {v} outside universe {}", self.universe),
                ));
            }
            buf.push(v as ElemId);
            prev = v;
        }
        let mut crc = [0u8; 4];
        self.inner
            .read_exact(&mut crc)
            .map_err(|_| corrupt(Some(record), "truncated checksum"))?;
        if u32::from_le_bytes(crc) != fnv1a(&payload) {
            return Err(corrupt(Some(record), "checksum mismatch"));
        }
        self.next_record += 1;
        Ok(Some(record as SetId))
    }

    /// Parses the footer after the last record: `(planted, label)`.
    ///
    /// # Errors
    ///
    /// [`BinError::Corrupt`] if records remain unread, the end marker is
    /// missing, or a footer section is damaged.
    pub fn finish(mut self) -> Result<(Option<Vec<SetId>>, String), BinError> {
        if self.next_record != self.num_sets {
            return Err(corrupt(
                Some(self.next_record),
                format!(
                    "finish() called with {} of {} records read",
                    self.next_record, self.num_sets
                ),
            ));
        }
        let mut planted = None;
        let mut label = String::new();
        // Everything before the end marker feeds the footer checksum.
        let mut footer: Vec<u8> = Vec::new();
        loop {
            let mut tag = [0u8; 1];
            self.inner
                .read_exact(&mut tag)
                .map_err(|_| corrupt(None, "truncated footer (missing end marker)"))?;
            match tag[0] {
                b'E' => {
                    let mut crc = [0u8; 4];
                    self.inner
                        .read_exact(&mut crc)
                        .map_err(|_| corrupt(None, "truncated footer checksum"))?;
                    if u32::from_le_bytes(crc) != fnv1a(&footer) {
                        return Err(corrupt(None, "footer checksum mismatch"));
                    }
                    return Ok((planted, label));
                }
                b'O' => {
                    footer.push(b'O');
                    let count = {
                        let mut tee = Tee {
                            inner: &mut self.inner,
                            copy: &mut footer,
                        };
                        read_varint(&mut tee, None)? as usize
                    };
                    if count > self.num_sets {
                        return Err(corrupt(None, "planted cover larger than the family"));
                    }
                    let mut ids = Vec::with_capacity(count);
                    for _ in 0..count {
                        let id = {
                            let mut tee = Tee {
                                inner: &mut self.inner,
                                copy: &mut footer,
                            };
                            read_varint(&mut tee, None)?
                        };
                        if id >= self.num_sets as u64 {
                            return Err(corrupt(None, format!("planted id {id} out of range")));
                        }
                        ids.push(id as SetId);
                    }
                    planted = Some(ids);
                }
                b'L' => {
                    footer.push(b'L');
                    let len = {
                        let mut tee = Tee {
                            inner: &mut self.inner,
                            copy: &mut footer,
                        };
                        read_varint(&mut tee, None)? as usize
                    };
                    let mut bytes = vec![0u8; len];
                    self.inner
                        .read_exact(&mut bytes)
                        .map_err(|_| corrupt(None, "truncated label"))?;
                    footer.extend_from_slice(&bytes);
                    label = String::from_utf8(bytes)
                        .map_err(|_| corrupt(None, "label is not UTF-8"))?;
                }
                t => return Err(corrupt(None, format!("unknown footer tag {t:#04x}"))),
            }
        }
    }
}

/// Copies every byte read from `inner` into `copy` — lets the record
/// decoder checksum exactly the bytes it consumed.
struct Tee<'a, R: Read> {
    inner: &'a mut R,
    copy: &'a mut Vec<u8>,
}

impl<R: Read> Read for Tee<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.copy.extend_from_slice(&buf[..n]);
        Ok(n)
    }
}

/// Reads a whole instance from the `SCB1` binary format.
///
/// # Errors
///
/// Any [`BinError`] surfaced by the streaming reader.
pub fn read_instance_binary<R: BufRead>(r: R) -> Result<Instance, BinError> {
    let mut reader = BinaryReader::new(r)?;
    let universe = reader.universe();
    let mut sets = Vec::with_capacity(reader.num_sets());
    let mut buf = Vec::new();
    while reader.next_set(&mut buf)?.is_some() {
        sets.push(buf.clone());
    }
    let (planted, label) = reader.finish()?;
    Ok(Instance {
        system: SetSystem::from_sets(universe, sets),
        planted,
        label,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn round_trip(inst: &Instance) -> Instance {
        let mut bytes = Vec::new();
        write_instance_binary(&mut bytes, inst).unwrap();
        read_instance_binary(&bytes[..]).unwrap()
    }

    #[test]
    fn round_trips_generated_instances() {
        for inst in [
            gen::planted(100, 50, 5, 1),
            gen::uniform_random(64, 32, 0.2, 2),
            gen::sparse(128, 64, 4, 3),
            gen::zipf(80, 40, 1.1, 20, 4),
        ] {
            let back = round_trip(&inst);
            assert_eq!(back.system.universe(), inst.system.universe());
            assert_eq!(back.system.num_sets(), inst.system.num_sets());
            for (id, elems) in inst.system.iter() {
                assert_eq!(back.system.set(id), elems);
            }
            assert_eq!(back.planted, inst.planted);
            assert_eq!(back.label, inst.label);
        }
    }

    #[test]
    fn round_trips_edge_cases() {
        // Empty sets, no planted, empty label, universe of one.
        let inst = Instance {
            system: SetSystem::from_sets(1, vec![vec![], vec![0], vec![]]),
            planted: None,
            label: String::new(),
        };
        let back = round_trip(&inst);
        assert_eq!(back.system.set(0), &[] as &[u32]);
        assert_eq!(back.system.set(1), &[0]);
        assert_eq!(back.planted, None);
        assert_eq!(back.label, "");
    }

    #[test]
    fn matches_text_format_round_trip() {
        let inst = gen::planted(200, 100, 8, 9);
        let mut text = Vec::new();
        crate::io::write_instance(&mut text, &inst).unwrap();
        let via_text = crate::io::read_instance(&text[..]).unwrap();
        let via_bin = round_trip(&inst);
        for (id, elems) in via_text.system.iter() {
            assert_eq!(via_bin.system.set(id), elems);
        }
        assert_eq!(via_bin.planted, via_text.planted);
    }

    #[test]
    fn binary_is_denser_than_text() {
        let inst = gen::planted(2048, 1024, 16, 5);
        let mut text = Vec::new();
        crate::io::write_instance(&mut text, &inst).unwrap();
        let mut bin = Vec::new();
        write_instance_binary(&mut bin, &inst).unwrap();
        assert!(
            bin.len() * 2 < text.len(),
            "binary ({}) should be at most half the text ({})",
            bin.len(),
            text.len()
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_instance_binary(&b"NOTSCB1.."[..]).unwrap_err();
        assert!(matches!(err, BinError::BadMagic), "{err}");
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let inst = gen::planted(64, 32, 4, 8);
        let mut bytes = Vec::new();
        write_instance_binary(&mut bytes, &inst).unwrap();
        // Chop the file at a spread of prefixes: every one must error,
        // never panic, never return Ok.
        for cut in [5usize, 6, 10, bytes.len() / 2, bytes.len() - 1] {
            let err = read_instance_binary(&bytes[..cut]).expect_err("truncated file accepted");
            let msg = err.to_string();
            assert!(!msg.is_empty());
        }
    }

    #[test]
    fn every_single_byte_flip_in_a_record_is_caught() {
        let inst = gen::planted(64, 8, 2, 3);
        let mut bytes = Vec::new();
        write_instance_binary(&mut bytes, &inst).unwrap();
        // Find the first record: magic(5) + header varints + u32 crc.
        let header_len = {
            let mut r = &bytes[5..];
            let before = r.len();
            let _ = read_varint(&mut r, None).unwrap();
            let _ = read_varint(&mut r, None).unwrap();
            5 + (before - r.len()) + 4
        };
        // Flip each bit of the first record's payload+checksum region.
        let mut caught = 0usize;
        let mut missed = Vec::new();
        let record_end = (header_len + 24).min(bytes.len());
        for pos in header_len..record_end {
            for bit in 0..8 {
                let mut dam = bytes.clone();
                dam[pos] ^= 1 << bit;
                match read_instance_binary(&dam[..]) {
                    Err(_) => caught += 1,
                    Ok(back) => {
                        // A flip that survives *must* decode to different
                        // content being impossible — verify it changed
                        // nothing observable (e.g. flipping a bit inside
                        // the checksum of an empty region can't happen
                        // here, so this branch records a miss).
                        let same = (0..inst.system.num_sets() as u32)
                            .all(|id| back.system.set(id) == inst.system.set(id));
                        if !same {
                            missed.push((pos, bit));
                        }
                    }
                }
            }
        }
        assert!(missed.is_empty(), "undetected corruption at {missed:?}");
        assert!(caught > 0);
    }

    #[test]
    fn streaming_reader_is_incremental_and_ordered() {
        let inst = gen::uniform_random(128, 64, 0.1, 6);
        let mut bytes = Vec::new();
        write_instance_binary(&mut bytes, &inst).unwrap();
        let mut reader = BinaryReader::new(&bytes[..]).unwrap();
        let mut buf = Vec::new();
        let mut id = 0u32;
        while let Some(got) = reader.next_set(&mut buf).unwrap() {
            assert_eq!(got, id);
            assert_eq!(buf.as_slice(), inst.system.set(id));
            id += 1;
        }
        assert_eq!(id as usize, inst.system.num_sets());
        let (planted, label) = reader.finish().unwrap();
        assert_eq!(planted, inst.planted);
        assert_eq!(label, inst.label);
    }

    #[test]
    fn finish_before_all_records_is_an_error() {
        let inst = gen::planted(32, 16, 2, 1);
        let mut bytes = Vec::new();
        write_instance_binary(&mut bytes, &inst).unwrap();
        let reader = BinaryReader::new(&bytes[..]).unwrap();
        assert!(reader.finish().is_err());
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            let got = read_varint(&mut &buf[..], None).unwrap();
            assert_eq!(got, v);
        }
    }

    #[test]
    fn varint_overflow_is_corrupt_not_panic() {
        // 11 bytes of 0xff can encode more than 64 bits.
        let bytes = [0xffu8; 11];
        assert!(read_varint(&mut &bytes[..], None).is_err());
    }
}
