//! Incremental construction of [`SetSystem`]s.

use crate::{ElemId, SetId, SetSystem};

/// Builds a [`SetSystem`] one set at a time.
///
/// Generators and the lower-bound reductions construct families
/// incrementally and need the id each set will receive; [`add_set`]
/// returns it. Element ids are validated eagerly so a construction bug
/// fails at the faulty `add_set` call rather than at `finish`.
///
/// [`add_set`]: SetSystemBuilder::add_set
///
/// # Examples
///
/// ```
/// use sc_setsystem::SetSystemBuilder;
///
/// let mut b = SetSystemBuilder::new(4);
/// let first = b.add_set(vec![0, 1]);
/// let second = b.add_set(vec![2, 3]);
/// let system = b.finish();
/// assert_eq!((first, second), (0, 1));
/// assert!(system.verify_cover(&[first, second]).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct SetSystemBuilder {
    universe: usize,
    sets: Vec<Vec<ElemId>>,
}

impl SetSystemBuilder {
    /// Starts a builder over `{0, …, universe-1}`.
    pub fn new(universe: usize) -> Self {
        Self {
            universe,
            sets: Vec::new(),
        }
    }

    /// Starts a builder expecting roughly `m` sets.
    pub fn with_capacity(universe: usize, m: usize) -> Self {
        Self {
            universe,
            sets: Vec::with_capacity(m),
        }
    }

    /// Ground set size.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of sets added so far.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// `true` if no sets have been added.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Adds a set and returns its id (ids are assigned `0, 1, 2, …`).
    ///
    /// # Panics
    ///
    /// Panics if any element id is `>= universe`.
    pub fn add_set(&mut self, elems: Vec<ElemId>) -> SetId {
        for &e in &elems {
            assert!(
                (e as usize) < self.universe,
                "element {e} outside universe {}",
                self.universe
            );
        }
        let id = self.sets.len() as SetId;
        self.sets.push(elems);
        id
    }

    /// Finalises into an immutable [`SetSystem`].
    pub fn finish(self) -> SetSystem {
        SetSystem::from_sets(self.universe, self.sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential() {
        let mut b = SetSystemBuilder::new(3);
        assert_eq!(b.add_set(vec![0]), 0);
        assert_eq!(b.add_set(vec![1]), 1);
        assert_eq!(b.add_set(vec![2]), 2);
        assert_eq!(b.len(), 3);
        let s = b.finish();
        assert_eq!(s.num_sets(), 3);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn add_set_validates_eagerly() {
        let mut b = SetSystemBuilder::new(2);
        b.add_set(vec![2]);
    }

    #[test]
    fn with_capacity_reserves() {
        let b = SetSystemBuilder::with_capacity(5, 100);
        assert!(b.is_empty());
        assert_eq!(b.universe(), 5);
    }
}
