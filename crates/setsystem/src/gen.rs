//! Workload generators for every experiment in the paper.
//!
//! Each generator returns an [`Instance`] whose `label` records the
//! parameters and whose `planted` field carries ground truth when the
//! construction knows one. All generators take an explicit seed so every
//! benchmark run is reproducible.
//!
//! | Generator | Used by experiment | Character |
//! |-----------|--------------------|-----------|
//! | [`planted`] | E1, E2, E3 | disjoint optimal cover + dominated decoys; `OPT = k` provably |
//! | [`planted_noisy`] | E1, E2 | planted cover + overlapping decoys; `OPT ≤ k` |
//! | [`uniform_random`] | E2, E9 | Bernoulli membership, patched to feasibility |
//! | [`zipf`] | E2 | power-law set sizes (few huge, many tiny sets) |
//! | [`greedy_adversarial`] | E1, E9 | classic `Ω(log n)`-gap instance for greedy; `OPT = 2` |
//! | [`primal_dual_adversarial`] | oracle tests | frequency trap: the local-ratio oracle pays `f/2` |
//! | [`sparse`] | E8 | every set of size ≤ `s` (Section 6 regime) |

use crate::{ElemId, Instance, SetId, SetSystemBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Partitions `0..n` into `k` nearly-equal contiguous parts after a
/// random shuffle, so part membership is random but sizes are balanced.
fn random_partition(n: usize, k: usize, rng: &mut StdRng) -> Vec<Vec<ElemId>> {
    assert!(k >= 1 && k <= n, "need 1 <= k={k} <= n={n}");
    let mut elems: Vec<ElemId> = (0..n as ElemId).collect();
    elems.shuffle(rng);
    let mut parts = Vec::with_capacity(k);
    let base = n / k;
    let extra = n % k;
    let mut at = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        parts.push(elems[at..at + len].to_vec());
        at += len;
    }
    parts
}

/// Draws a uniform random subset of `part` of the given size.
fn random_subset(part: &[ElemId], size: usize, rng: &mut StdRng) -> Vec<ElemId> {
    let mut pool = part.to_vec();
    pool.shuffle(rng);
    pool.truncate(size);
    pool
}

/// Planted-cover instance: `k` disjoint sets partition `U` (the optimal
/// cover) and `m - k` decoys, each a random *strict subset of a single
/// planted part*.
///
/// Because every decoy lies inside one part, any cover must use at least
/// one set per part, so `OPT = k` exactly — the benchmarks can report
/// true approximation ratios without an exact solve.
///
/// Set ids are shuffled so the planted sets are scattered through the
/// stream.
///
/// # Panics
///
/// Panics unless `1 ≤ k ≤ n` and `m ≥ k`.
pub fn planted(n: usize, m: usize, k: usize, seed: u64) -> Instance {
    assert!(m >= k, "need m={m} >= k={k}");
    let mut rng = StdRng::seed_from_u64(seed);
    let parts = random_partition(n, k, &mut rng);

    let mut sets: Vec<Vec<ElemId>> = parts.clone();
    for _ in k..m {
        let part = &parts[rng.random_range(0..k)];
        // Strict subset: size in [1, |part|-1] when possible.
        let hi = part.len().max(2) - 1;
        let size = rng.random_range(1..=hi.max(1));
        sets.push(random_subset(part, size.min(part.len()), &mut rng));
    }

    let (system, relabel) = shuffle_sets(n, sets, &mut rng);
    let planted = (0..k as SetId).map(|i| relabel[i as usize]).collect();
    Instance {
        system,
        planted: Some(planted),
        label: format!("planted(n={n},m={m},k={k},seed={seed})"),
    }
}

/// Planted cover plus *overlapping* decoys: decoys are random subsets of
/// all of `U` with sizes up to `⌈n/k⌉`. `OPT ≤ k`; equality is typical
/// but no longer forced, so exact-solve when the precise value matters.
pub fn planted_noisy(n: usize, m: usize, k: usize, seed: u64) -> Instance {
    assert!(m >= k, "need m={m} >= k={k}");
    let mut rng = StdRng::seed_from_u64(seed);
    let parts = random_partition(n, k, &mut rng);
    let all: Vec<ElemId> = (0..n as ElemId).collect();
    let cap = n.div_ceil(k);

    let mut sets: Vec<Vec<ElemId>> = parts;
    for _ in k..m {
        let size = rng.random_range(1..=cap);
        sets.push(random_subset(&all, size, &mut rng));
    }

    let (system, relabel) = shuffle_sets(n, sets, &mut rng);
    let planted = (0..k as SetId).map(|i| relabel[i as usize]).collect();
    Instance {
        system,
        planted: Some(planted),
        label: format!("planted_noisy(n={n},m={m},k={k},seed={seed})"),
    }
}

/// Bernoulli random family: each of the `m` sets contains each element
/// independently with probability `p`, then every element left uncovered
/// is patched into one uniformly random set (so the instance is always
/// feasible).
pub fn uniform_random(n: usize, m: usize, p: f64, seed: u64) -> Instance {
    assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
    assert!(m >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sets: Vec<Vec<ElemId>> = vec![Vec::new(); m];
    let mut covered = vec![false; n];
    for set in &mut sets {
        for (e, cov) in covered.iter_mut().enumerate() {
            if rng.random_bool(p) {
                set.push(e as ElemId);
                *cov = true;
            }
        }
    }
    for (e, &c) in covered.iter().enumerate() {
        if !c {
            let victim = rng.random_range(0..m);
            sets[victim].push(e as ElemId);
        }
    }
    let mut b = SetSystemBuilder::with_capacity(n, m);
    for s in sets {
        b.add_set(s);
    }
    Instance {
        system: b.finish(),
        planted: None,
        label: format!("uniform(n={n},m={m},p={p},seed={seed})"),
    }
}

/// Power-law family: set `i` (before shuffling) has size
/// `clamp(⌊max_size / (i+1)^theta⌋, 1, max_size)` with uniformly random
/// elements; uncovered elements are patched into random sets.
///
/// Models the "few huge sets, many tiny sets" shape of web-scale data
/// (the paper cites web host analysis and data mining as motivating
/// workloads). Cap `max_size` well below `n` to keep `OPT > 1`.
pub fn zipf(n: usize, m: usize, theta: f64, max_size: usize, seed: u64) -> Instance {
    assert!(m >= 1);
    assert!(
        max_size >= 1 && max_size <= n,
        "need 1 <= max_size={max_size} <= n={n}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let all: Vec<ElemId> = (0..n as ElemId).collect();
    let mut sets: Vec<Vec<ElemId>> = Vec::with_capacity(m);
    let mut covered = vec![false; n];
    for i in 0..m {
        let size = ((max_size as f64) / ((i + 1) as f64).powf(theta)).floor() as usize;
        let size = size.clamp(1, max_size);
        let s = random_subset(&all, size, &mut rng);
        for &e in &s {
            covered[e as usize] = true;
        }
        sets.push(s);
    }
    for (e, &c) in covered.iter().enumerate() {
        if !c {
            let victim = rng.random_range(0..m);
            sets[victim].push(e as ElemId);
        }
    }
    let (system, _) = shuffle_sets(n, sets, &mut rng);
    Instance {
        system,
        planted: None,
        label: format!("zipf(n={n},m={m},theta={theta},max={max_size},seed={seed})"),
    }
}

/// The classic instance on which greedy pays `Θ(log n)` versus `OPT = 2`.
///
/// The universe is two rows of `2^levels - 1` elements. The planted
/// optimum is `{top row, bottom row}`. The `levels` bait sets partition
/// the columns into blocks of widths `2^{levels-1}, …, 2, 1`; bait `i`
/// covers both rows of block `i` and is *just* bigger than half of what
/// remains, so greedy (and gain-threshold streaming algorithms fed the
/// baits first) eats all the baits.
///
/// Stream order is adversarial by design: baits appear before the rows.
pub fn greedy_adversarial(levels: u32) -> Instance {
    assert!((1..20).contains(&levels), "levels={levels} out of range");
    let row = (1usize << levels) - 1;
    let n = 2 * row;
    let top = |c: usize| c as ElemId;
    let bottom = |c: usize| (row + c) as ElemId;

    let mut b = SetSystemBuilder::new(n);
    // Baits first (adversarial order for one-pass algorithms).
    let mut start = 0usize;
    for i in 0..levels {
        let width = 1usize << (levels - 1 - i);
        let mut s = Vec::with_capacity(2 * width);
        for c in start..start + width {
            s.push(top(c));
            s.push(bottom(c));
        }
        b.add_set(s);
        start += width;
    }
    let top_id = b.add_set((0..row).map(top).collect());
    let bottom_id = b.add_set((0..row).map(bottom).collect());

    Instance {
        system: b.finish(),
        planted: Some(vec![top_id, bottom_id]),
        label: format!("greedy_adversarial(levels={levels})"),
    }
}

/// The frequency trap: the worst case of the primal–dual
/// (local-ratio) oracle, where buying a pivot element's whole star
/// costs `f/2` times the optimum.
///
/// Per block: a *hub* element contained in `f` star sets
/// `A_i = {hub, pᵢ}`, and `f + 1` identical "blanket" copies
/// `C = {p₁, …, p_f}` (the duplicates raise every private's frequency
/// to `f + 1`, making the hub — frequency `f` — the least frequent
/// uncovered element, so primal–dual pivots on it and buys all `f`
/// stars). The optimum is one star plus one blanket: 2 per block.
///
/// # Panics
///
/// Panics unless `f ≥ 2` and `blocks ≥ 1`.
pub fn primal_dual_adversarial(f: usize, blocks: usize) -> Instance {
    assert!(f >= 2, "need f >= 2, got {f}");
    assert!(blocks >= 1, "need at least one block");
    let per_block = 1 + f; // hub + privates
    let n = blocks * per_block;
    let mut b = SetSystemBuilder::new(n);
    let mut planted = Vec::with_capacity(2 * blocks);
    for blk in 0..blocks {
        let base = (blk * per_block) as ElemId;
        let hub = base;
        let privates: Vec<ElemId> = (1..=f as ElemId).map(|i| base + i).collect();
        let first_star = b.add_set(vec![hub, privates[0]]);
        for &p in &privates[1..] {
            b.add_set(vec![hub, p]);
        }
        let blanket = b.add_set(privates.clone());
        for _ in 0..f {
            b.add_set(privates.clone());
        }
        planted.push(first_star);
        planted.push(blanket);
    }
    Instance {
        system: b.finish(),
        planted: Some(planted),
        label: format!("primal_dual_adversarial(f={f}, blocks={blocks})"),
    }
}

/// Sparse family for the Section 6 regime: every set has size ≤ `s`.
///
/// A partition of `U` into `⌈n/s⌉` sets of size ≤ `s` guarantees
/// feasibility (and is the planted cover); the remaining sets are random
/// subsets of size in `[1, s]`.
///
/// # Panics
///
/// Panics unless `1 ≤ s ≤ n` and `m ≥ ⌈n/s⌉`.
pub fn sparse(n: usize, m: usize, s: usize, seed: u64) -> Instance {
    assert!(s >= 1 && s <= n, "need 1 <= s={s} <= n={n}");
    let k = n.div_ceil(s);
    assert!(m >= k, "need m={m} >= ceil(n/s)={k}");
    let mut rng = StdRng::seed_from_u64(seed);
    let parts = random_partition(n, k, &mut rng);
    debug_assert!(parts.iter().all(|p| p.len() <= s));
    let all: Vec<ElemId> = (0..n as ElemId).collect();

    let mut sets: Vec<Vec<ElemId>> = parts;
    for _ in k..m {
        let size = rng.random_range(1..=s);
        sets.push(random_subset(&all, size, &mut rng));
    }
    let (system, relabel) = shuffle_sets(n, sets, &mut rng);
    let planted = (0..k as SetId).map(|i| relabel[i as usize]).collect();
    Instance {
        system,
        planted: Some(planted),
        label: format!("sparse(n={n},m={m},s={s},seed={seed})"),
    }
}

/// Shuffles set order; returns the system and the relabelling map
/// `old id → new id`.
fn shuffle_sets(
    n: usize,
    sets: Vec<Vec<ElemId>>,
    rng: &mut StdRng,
) -> (crate::SetSystem, Vec<SetId>) {
    let m = sets.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.shuffle(rng);
    let mut relabel = vec![0 as SetId; m];
    let mut shuffled: Vec<Vec<ElemId>> = vec![Vec::new(); m];
    for (new, &old) in order.iter().enumerate() {
        relabel[old] = new as SetId;
        shuffled[new] = sets[old].clone();
    }
    let mut b = SetSystemBuilder::with_capacity(n, m);
    for s in shuffled {
        b.add_set(s);
    }
    (b.finish(), relabel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_is_valid_and_partitions() {
        let inst = planted(100, 40, 7, 1);
        inst.validate();
        let p = inst.planted.as_ref().unwrap();
        assert_eq!(p.len(), 7);
        // Planted sets partition U: sizes sum to n and cover verifies.
        let total: usize = p.iter().map(|&id| inst.system.set(id).len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn planted_decoys_are_dominated() {
        let inst = planted(60, 30, 5, 2);
        let p: Vec<&[ElemId]> = inst
            .planted
            .as_ref()
            .unwrap()
            .iter()
            .map(|&id| inst.system.set(id))
            .collect();
        for (id, s) in inst.system.iter() {
            if inst.planted.as_ref().unwrap().contains(&id) {
                continue;
            }
            // Every decoy must sit inside exactly one planted part.
            let within = p
                .iter()
                .filter(|part| s.iter().all(|e| part.contains(e)))
                .count();
            assert_eq!(within, 1, "decoy {id} not inside a single part");
        }
    }

    #[test]
    fn planted_noisy_validates() {
        planted_noisy(80, 50, 8, 3).validate();
    }

    #[test]
    fn uniform_random_is_always_feasible() {
        for seed in 0..5 {
            // p = 0 forces the patch-up path to do all the work.
            let inst = uniform_random(50, 10, 0.0, seed);
            inst.validate();
            let inst = uniform_random(50, 10, 0.05, seed);
            inst.validate();
        }
    }

    #[test]
    fn zipf_sizes_decay() {
        let inst = zipf(200, 50, 1.0, 200, 4);
        inst.validate();
        assert!(inst.system.max_set_size() >= 100, "head set should be huge");
        let capped = zipf(200, 50, 1.0, 25, 5);
        capped.validate();
        assert!(
            capped.system.max_set_size() <= 25 + 50,
            "cap holds up to patching"
        );
    }

    #[test]
    fn greedy_adversarial_structure() {
        let inst = greedy_adversarial(4);
        inst.validate();
        let n = inst.system.universe();
        assert_eq!(n, 2 * 15);
        assert_eq!(inst.system.num_sets(), 4 + 2);
        assert_eq!(inst.planted.as_ref().unwrap().len(), 2);
        // Bait 0 is strictly bigger than either row's remaining half.
        assert_eq!(inst.system.set(0).len(), 16);
        assert_eq!(inst.system.set(4).len(), 15);
    }

    #[test]
    fn sparse_respects_size_bound() {
        let inst = sparse(97, 60, 7, 5);
        inst.validate();
        assert!(inst.system.max_set_size() <= 7);
        assert_eq!(inst.planted.as_ref().unwrap().len(), 97usize.div_ceil(7));
    }

    #[test]
    fn primal_dual_adversarial_structure() {
        let inst = primal_dual_adversarial(5, 3);
        inst.validate();
        assert_eq!(inst.system.universe(), 3 * 6);
        // Per block: f stars + (f+1) blankets.
        assert_eq!(inst.system.num_sets(), 3 * (5 + 6));
        assert_eq!(inst.planted.as_ref().unwrap().len(), 6, "2 sets per block");
        // Hub frequency f, private frequency f+2 (its star + f+1 blankets).
        let inc = inst.system.element_incidence();
        assert_eq!(inc[0].len(), 5, "hub in f stars");
        assert_eq!(inc[1].len(), 1 + 6, "private in its star + f+1 blankets");
    }

    #[test]
    fn generators_are_deterministic_in_seed() {
        let a = planted(64, 32, 4, 42);
        let b = planted(64, 32, 4, 42);
        assert_eq!(a.system, b.system);
        assert_eq!(a.planted, b.planted);
        let c = planted(64, 32, 4, 43);
        assert_ne!(a.system, c.system);
    }
}
