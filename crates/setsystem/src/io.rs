//! Plain-text serialisation of set systems and instances.
//!
//! The format is line-oriented and diff-friendly, in the spirit of DIMACS:
//!
//! ```text
//! c optional comment lines
//! p setcover <universe> <num_sets>
//! s 0 4 17 23        (one line per set: "s" then sorted element ids)
//! s 9
//! s                  (empty sets are legal)
//! o 0 2              (optional: planted/known cover as set ids)
//! l planted(n=…)     (optional: instance label)
//! ```
//!
//! Sets appear in stream order; their line order *is* the repository
//! order the streaming algorithms scan. Parsing is strict — any
//! malformed line yields a [`ParseError`] with its line number — so a
//! corrupted workload file fails loudly rather than silently perturbing
//! an experiment.

use crate::{ElemId, Instance, SetId, SetSystem, SetSystemBuilder};
use std::fmt;
use std::io::{BufRead, Write};

/// A parse failure, with 1-based line number and explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Writes an instance in the text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_instance<W: Write>(w: &mut W, inst: &Instance) -> std::io::Result<()> {
    let system = &inst.system;
    writeln!(w, "c streaming-set-cover instance")?;
    writeln!(w, "p setcover {} {}", system.universe(), system.num_sets())?;
    for (_, elems) in system.iter() {
        write!(w, "s")?;
        for e in elems {
            write!(w, " {e}")?;
        }
        writeln!(w)?;
    }
    if let Some(p) = &inst.planted {
        write!(w, "o")?;
        for id in p {
            write!(w, " {id}")?;
        }
        writeln!(w)?;
    }
    if !inst.label.is_empty() {
        writeln!(w, "l {}", inst.label)?;
    }
    Ok(())
}

/// Reads an instance from the text format.
///
/// # Errors
///
/// Returns a [`ParseError`] for any structural violation: missing or
/// duplicate header, ids out of range, wrong set count, unknown record
/// type, or non-numeric fields.
pub fn read_instance<R: BufRead>(r: R) -> Result<Instance, ParseError> {
    let mut builder: Option<SetSystemBuilder> = None;
    let mut declared_sets = 0usize;
    let mut planted: Option<Vec<SetId>> = None;
    let mut label = String::new();

    for (idx, line) in r.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| err(lineno, format!("I/O error: {e}")))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let (tag, rest) = line.split_at(1);
        let rest = rest.trim();
        match tag {
            "p" => {
                if builder.is_some() {
                    return Err(err(lineno, "duplicate problem line"));
                }
                let mut it = rest.split_whitespace();
                if it.next() != Some("setcover") {
                    return Err(err(lineno, "expected 'p setcover <n> <m>'"));
                }
                let n: usize = it
                    .next()
                    .ok_or_else(|| err(lineno, "missing universe size"))?
                    .parse()
                    .map_err(|_| err(lineno, "universe size not a number"))?;
                let m: usize = it
                    .next()
                    .ok_or_else(|| err(lineno, "missing set count"))?
                    .parse()
                    .map_err(|_| err(lineno, "set count not a number"))?;
                if it.next().is_some() {
                    return Err(err(lineno, "trailing tokens on problem line"));
                }
                builder = Some(SetSystemBuilder::with_capacity(n, m));
                declared_sets = m;
            }
            "s" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(lineno, "set line before problem line"))?;
                if b.len() == declared_sets {
                    return Err(err(lineno, "more sets than declared"));
                }
                let mut elems: Vec<ElemId> = Vec::new();
                for tok in rest.split_whitespace() {
                    let e: ElemId = tok
                        .parse()
                        .map_err(|_| err(lineno, format!("bad element id {tok:?}")))?;
                    if (e as usize) >= b.universe() {
                        return Err(err(
                            lineno,
                            format!("element {e} outside universe {}", b.universe()),
                        ));
                    }
                    elems.push(e);
                }
                b.add_set(elems);
            }
            "o" => {
                if planted.is_some() {
                    return Err(err(lineno, "duplicate cover line"));
                }
                let mut ids = Vec::new();
                for tok in rest.split_whitespace() {
                    let id: SetId = tok
                        .parse()
                        .map_err(|_| err(lineno, format!("bad set id {tok:?}")))?;
                    ids.push(id);
                }
                planted = Some(ids);
            }
            "l" => {
                label = rest.to_string();
            }
            other => return Err(err(lineno, format!("unknown record type {other:?}"))),
        }
    }

    let builder = builder.ok_or_else(|| err(0, "missing problem line"))?;
    if builder.len() != declared_sets {
        return Err(err(
            0,
            format!("declared {declared_sets} sets, found {}", builder.len()),
        ));
    }
    let system = builder.finish();
    if let Some(p) = &planted {
        for &id in p {
            if (id as usize) >= system.num_sets() {
                return Err(err(0, format!("cover references unknown set {id}")));
            }
        }
    }
    Ok(Instance {
        system,
        planted,
        label: if label.is_empty() {
            "from-file".into()
        } else {
            label
        },
    })
}

/// Convenience: serialise to a `String`.
pub fn to_string(inst: &Instance) -> String {
    let mut buf = Vec::new();
    write_instance(&mut buf, inst).expect("writing to memory cannot fail");
    String::from_utf8(buf).expect("format is ASCII")
}

/// Convenience: parse from a `&str`.
pub fn from_str(s: &str) -> Result<Instance, ParseError> {
    read_instance(s.as_bytes())
}

/// Reads an instance from a reader holding *either* on-disk format:
/// the `SCB1` binary magic is sniffed without consuming the stream and
/// dispatches to the matching reader. Any parse error is prefixed with
/// `name` (`name:line: message` for text, `name: message` for binary,
/// whose errors locate the damaged record instead of a line) — the
/// single sniffing loader `sctool` and the serving layer's `!reload`
/// admin command share.
///
/// # Errors
///
/// The prefixed parse or I/O error message.
pub fn read_instance_sniffed<R: BufRead>(name: &str, mut reader: R) -> Result<Instance, String> {
    let head = reader.fill_buf().map_err(|e| format!("{name}: {e}"))?;
    if head.starts_with(crate::binary::MAGIC) {
        crate::binary::read_instance_binary(reader).map_err(|e| format!("{name}: {e}"))
    } else {
        read_instance(reader).map_err(|e| format!("{name}:{}: {}", e.line, e.message))
    }
}

/// Loads an instance from a file path in either format (see
/// [`read_instance_sniffed`]).
///
/// # Errors
///
/// The open, read, or parse error, prefixed with the path.
pub fn load_path(path: &str) -> Result<Instance, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    read_instance_sniffed(path, std::io::BufReader::new(file))
}

/// Convenience: serialise a bare [`SetSystem`] (no planted cover).
pub fn system_to_string(system: &SetSystem) -> String {
    to_string(&Instance {
        system: system.clone(),
        planted: None,
        label: String::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip_preserves_everything() {
        let inst = gen::planted(60, 30, 5, 9);
        let text = to_string(&inst);
        let back = from_str(&text).expect("roundtrip parse");
        assert_eq!(back.system, inst.system);
        assert_eq!(back.planted, inst.planted);
        assert_eq!(back.label, inst.label);
        back.validate();
    }

    #[test]
    fn minimal_document_parses() {
        let inst = from_str("p setcover 3 2\ns 0 1\ns 2\n").unwrap();
        assert_eq!(inst.system.universe(), 3);
        assert_eq!(inst.system.num_sets(), 2);
        assert_eq!(inst.system.set(0), &[0, 1]);
        assert!(inst.planted.is_none());
    }

    #[test]
    fn comments_blanks_and_empty_sets() {
        let text = "c hello\n\np setcover 2 2\ns\n  s 0 1 \nc bye\n";
        let inst = from_str(text).unwrap();
        assert_eq!(inst.system.set(0), &[] as &[u32]);
        assert_eq!(inst.system.set(1), &[0, 1]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: Vec<(&str, usize, &str)> = vec![
            ("s 0\n", 1, "set line before problem line"),
            (
                "p setcover 2 1\np setcover 2 1\n",
                2,
                "duplicate problem line",
            ),
            ("p setcover 2 1\ns 5\n", 2, "outside universe"),
            ("p setcover 2 1\ns x\n", 2, "bad element id"),
            ("p setcover 2 1\ns 0\ns 1\n", 3, "more sets than declared"),
            ("p setcover 2 2\ns 0\n", 0, "declared 2 sets, found 1"),
            ("p setcover 2 1\nz 1\n", 2, "unknown record type"),
            ("p setcover 2 1\ns 0\no 4\n", 0, "unknown set"),
            ("p setcover x 1\n", 1, "not a number"),
        ];
        for (text, line, needle) in cases {
            let e = from_str(text).expect_err(text);
            assert_eq!(e.line, line, "{text:?} → {e}");
            assert!(e.to_string().contains(needle), "{text:?} → {e}");
        }
    }

    #[test]
    fn planted_cover_roundtrips_and_validates() {
        let text = "p setcover 4 3\ns 0 1\ns 2 3\ns 1\no 0 1\nl demo\n";
        let inst = from_str(text).unwrap();
        assert_eq!(inst.planted, Some(vec![0, 1]));
        assert_eq!(inst.label, "demo");
        inst.validate();
    }
}
