//! A generated workload: a set system plus ground-truth metadata.

use crate::{SetId, SetSystem};

/// A benchmark instance: the set system together with whatever ground
/// truth the generator knows about it.
///
/// Approximation ratios in the experiment reports are computed against
/// [`opt_upper_bound`](Instance::opt_upper_bound): the planted cover size
/// when one exists, otherwise an exact solve (affordable at our instance
/// sizes) performed by the harness.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The set system `(U, F)`.
    pub system: SetSystem,
    /// A cover planted by the generator, if it planted one.
    ///
    /// The planted cover is feasible by construction, so `OPT ≤
    /// planted.len()`; for the planted-cover generators it is also
    /// optimal with overwhelming probability (decoy sets are strictly
    /// dominated), and the harness verifies optimality when it matters.
    pub planted: Option<Vec<SetId>>,
    /// Human-readable generator label, e.g. `"planted(n=1024,m=2048,k=16)"`.
    pub label: String,
}

impl Instance {
    /// Wraps a system with no ground truth.
    pub fn unlabelled(system: SetSystem) -> Self {
        Self {
            system,
            planted: None,
            label: String::from("adhoc"),
        }
    }

    /// Upper bound on `|OPT|` known without solving: the planted cover
    /// size, else `m` (the whole family).
    pub fn opt_upper_bound(&self) -> usize {
        self.planted
            .as_ref()
            .map_or(self.system.num_sets(), Vec::len)
    }

    /// Asserts the instance invariants generators promise: coverable, and
    /// the planted solution (if any) really is a cover.
    pub fn validate(&self) {
        assert!(self.system.is_coverable(), "{}: not coverable", self.label);
        if let Some(p) = &self.planted {
            self.system
                .verify_cover(p)
                .unwrap_or_else(|e| panic!("{}: planted cover invalid: {e}", self.label));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_upper_bound_prefers_planted() {
        let system = SetSystem::from_sets(2, vec![vec![0, 1], vec![0], vec![1]]);
        let mut inst = Instance::unlabelled(system);
        assert_eq!(inst.opt_upper_bound(), 3);
        inst.planted = Some(vec![0]);
        assert_eq!(inst.opt_upper_bound(), 1);
        inst.validate();
    }

    #[test]
    #[should_panic(expected = "planted cover invalid")]
    fn validate_rejects_bogus_planted() {
        let system = SetSystem::from_sets(2, vec![vec![0], vec![1]]);
        let inst = Instance {
            system,
            planted: Some(vec![0]),
            label: "bogus".into(),
        };
        inst.validate();
    }
}
