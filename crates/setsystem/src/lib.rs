//! Set systems `(U, F)` and workload generators.
//!
//! A [`SetSystem`] is the immutable input of every algorithm in this
//! repository: a ground set `U = {0, …, n-1}` and a family of `m` sets,
//! each stored as a sorted slice of element ids. In the streaming model
//! the family is the *read-only repository* the algorithms scan; the
//! `sc_stream` crate wraps a `SetSystem` in a pass-counting handle.
//!
//! The [`gen`] module provides every workload used by the benchmarks:
//! planted covers, uniform random families, Zipf-sized families, the
//! classic greedy-adversarial instance, and sparse families for the
//! Section 6 experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
mod builder;
pub mod gen;
mod instance;
pub mod io;
mod system;

pub use builder::SetSystemBuilder;
pub use instance::Instance;
pub use system::{CoverError, SetSystem};

/// Identifier of an element of the ground set `U = {0, …, n-1}`.
pub type ElemId = u32;

/// Identifier of a set in the family `F = {r_0, …, r_{m-1}}`.
///
/// Set ids index into [`SetSystem::set`] and are what streaming
/// algorithms emit as their solution.
pub type SetId = u32;
