//! The immutable set system type.

use crate::{ElemId, SetId};
use sc_bitset::{BitSet, HeapWords};
use std::fmt;

/// An immutable set system `(U, F)`: a ground set of `universe` elements
/// and a family of sets, each a sorted slice of element ids.
///
/// In the streaming model this value *is* the read-only repository: its
/// storage is not charged to any algorithm, and algorithms may only read
/// it through the pass-counted handle in `sc_stream`.
///
/// Invariants (enforced by [`SetSystemBuilder`](crate::SetSystemBuilder)
/// and by [`SetSystem::from_sets`]):
///
/// * every set is sorted and duplicate-free;
/// * every element id is `< universe`.
///
/// Sets may be empty and the family may contain duplicate sets — the
/// paper's model allows both, and the lower-bound constructions use
/// highly redundant families.
#[derive(Clone, PartialEq, Eq)]
pub struct SetSystem {
    universe: usize,
    sets: Vec<Box<[ElemId]>>,
}

/// Why a candidate solution fails to be a cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverError {
    /// A solution set id is out of range.
    UnknownSet(SetId),
    /// At least one element is left uncovered; the smallest is reported.
    Uncovered(ElemId),
}

impl fmt::Display for CoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverError::UnknownSet(s) => write!(f, "solution references unknown set {s}"),
            CoverError::Uncovered(e) => write!(f, "element {e} is not covered"),
        }
    }
}

impl std::error::Error for CoverError {}

impl SetSystem {
    /// Builds a system from raw sets, sorting and deduplicating each.
    ///
    /// # Panics
    ///
    /// Panics if any element id is `>= universe`.
    pub fn from_sets(universe: usize, sets: Vec<Vec<ElemId>>) -> Self {
        let sets = sets
            .into_iter()
            .map(|mut s| {
                s.sort_unstable();
                s.dedup();
                if let Some(&max) = s.last() {
                    assert!(
                        (max as usize) < universe,
                        "element {max} outside universe {universe}"
                    );
                }
                s.into_boxed_slice()
            })
            .collect();
        Self { universe, sets }
    }

    /// Ground set size `n = |U|`.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Family size `m = |F|`.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// The sorted element ids of set `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn set(&self, id: SetId) -> &[ElemId] {
        &self.sets[id as usize]
    }

    /// Iterates over `(id, elements)` pairs in repository order.
    pub fn iter(&self) -> impl Iterator<Item = (SetId, &[ElemId])> {
        self.sets
            .iter()
            .enumerate()
            .map(|(i, s)| (i as SetId, &**s))
    }

    /// Total number of (set, element) incidences, `Σ |r|`.
    ///
    /// This is the paper's "input size" `O(mn)` quantity: the space a
    /// single-pass algorithm would need to store the whole input.
    pub fn total_size(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Size of the largest set (0 for an empty family).
    pub fn max_set_size(&self) -> usize {
        self.sets.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// `true` if `⋃ F = U`, i.e. a full cover exists at all.
    pub fn is_coverable(&self) -> bool {
        let mut seen = BitSet::new(self.universe);
        for s in &self.sets {
            for &e in s.iter() {
                seen.insert(e);
            }
        }
        seen.count() == self.universe
    }

    /// Checks that `solution` covers the whole universe.
    pub fn verify_cover(&self, solution: &[SetId]) -> Result<(), CoverError> {
        self.verify_cover_of(solution, None)
    }

    /// Checks that `solution` covers `target` (or all of `U` if `None`).
    pub fn verify_cover_of(
        &self,
        solution: &[SetId],
        target: Option<&BitSet>,
    ) -> Result<(), CoverError> {
        let mut covered = BitSet::new(self.universe);
        for &id in solution {
            if (id as usize) >= self.sets.len() {
                return Err(CoverError::UnknownSet(id));
            }
            for &e in self.set(id) {
                covered.insert(e);
            }
        }
        match target {
            Some(t) => {
                let mut missing = t.clone();
                missing.difference_with(&covered);
                match missing.first() {
                    Some(e) => Err(CoverError::Uncovered(e)),
                    None => Ok(()),
                }
            }
            None => {
                if covered.count() == self.universe {
                    Ok(())
                } else {
                    let mut missing = BitSet::full(self.universe);
                    missing.difference_with(&covered);
                    Err(CoverError::Uncovered(
                        missing.first().expect("missing element"),
                    ))
                }
            }
        }
    }

    /// Materialises set `id` as a dense bitset over the universe.
    pub fn set_as_bitset(&self, id: SetId) -> BitSet {
        BitSet::from_iter(self.universe, self.set(id).iter().copied())
    }

    /// Materialises every set as a dense bitset (offline solvers only —
    /// this is exactly the `O(mn)` storage streaming algorithms avoid).
    pub fn all_bitsets(&self) -> Vec<BitSet> {
        (0..self.num_sets() as SetId)
            .map(|i| self.set_as_bitset(i))
            .collect()
    }

    /// For each element, the ids of the sets containing it.
    pub fn element_incidence(&self) -> Vec<Vec<SetId>> {
        let mut inc = vec![Vec::new(); self.universe];
        for (id, s) in self.iter() {
            for &e in s {
                inc[e as usize].push(id);
            }
        }
        inc
    }
}

impl HeapWords for SetSystem {
    fn heap_words(&self) -> usize {
        let spine = (self.sets.len() * std::mem::size_of::<Box<[ElemId]>>()).div_ceil(8);
        let payload: usize = self
            .sets
            .iter()
            .map(|s| (s.len() * std::mem::size_of::<ElemId>()).div_ceil(8))
            .sum();
        spine + payload
    }
}

impl fmt::Debug for SetSystem {
    /// Compact form: `SetSystem(n=…, m=…, total=…)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SetSystem(n={}, m={}, total={})",
            self.universe,
            self.sets.len(),
            self.total_size()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetSystem {
        SetSystem::from_sets(6, vec![vec![0, 1, 2], vec![2, 3], vec![4, 5], vec![0, 5]])
    }

    #[test]
    fn accessors() {
        let s = tiny();
        assert_eq!(s.universe(), 6);
        assert_eq!(s.num_sets(), 4);
        assert_eq!(s.set(1), &[2, 3]);
        assert_eq!(s.total_size(), 9);
        assert_eq!(s.max_set_size(), 3);
        assert!(s.is_coverable());
    }

    #[test]
    fn from_sets_sorts_and_dedups() {
        let s = SetSystem::from_sets(5, vec![vec![4, 0, 4, 2]]);
        assert_eq!(s.set(0), &[0, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_range_element_panics() {
        SetSystem::from_sets(3, vec![vec![3]]);
    }

    #[test]
    fn verify_cover_accepts_and_rejects() {
        let s = tiny();
        assert_eq!(s.verify_cover(&[0, 1, 2]), Ok(()));
        assert_eq!(s.verify_cover(&[0, 1]), Err(CoverError::Uncovered(4)));
        assert_eq!(s.verify_cover(&[9]), Err(CoverError::UnknownSet(9)));
    }

    #[test]
    fn verify_cover_of_subtarget() {
        let s = tiny();
        let target = BitSet::from_iter(6, [2, 3]);
        assert_eq!(s.verify_cover_of(&[1], Some(&target)), Ok(()));
        assert_eq!(
            s.verify_cover_of(&[2], Some(&target)),
            Err(CoverError::Uncovered(2))
        );
    }

    #[test]
    fn uncoverable_system_detected() {
        let s = SetSystem::from_sets(4, vec![vec![0, 1], vec![1, 2]]);
        assert!(!s.is_coverable());
    }

    #[test]
    fn incidence_lists_every_membership() {
        let s = tiny();
        let inc = s.element_incidence();
        assert_eq!(inc[0], vec![0, 3]);
        assert_eq!(inc[2], vec![0, 1]);
        assert_eq!(inc[5], vec![2, 3]);
    }

    #[test]
    fn empty_family_and_empty_sets_are_legal() {
        let s = SetSystem::from_sets(0, vec![]);
        assert!(s.is_coverable(), "empty universe is trivially covered");
        let t = SetSystem::from_sets(2, vec![vec![], vec![0, 1]]);
        assert_eq!(t.set(0), &[] as &[u32]);
        assert_eq!(t.verify_cover(&[1]), Ok(()));
    }
}
