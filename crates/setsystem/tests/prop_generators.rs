//! Property tests: every generator must produce feasible instances with
//! valid planted covers across its whole parameter space.

use proptest::prelude::*;
use sc_setsystem::gen;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn planted_always_valid(n in 4usize..200, extra in 0usize..40, seed in 0u64..1000) {
        let k = 1 + n / 10;
        let inst = gen::planted(n, k + extra, k, seed);
        inst.validate();
        prop_assert_eq!(inst.system.num_sets(), k + extra);
        prop_assert_eq!(inst.system.universe(), n);
        // The planted cover is a partition: sizes sum to exactly n.
        let total: usize = inst.planted.as_ref().unwrap()
            .iter().map(|&id| inst.system.set(id).len()).sum();
        prop_assert_eq!(total, n);
    }

    #[test]
    fn planted_noisy_always_valid(n in 4usize..200, extra in 0usize..40, seed in 0u64..1000) {
        let k = 1 + n / 10;
        gen::planted_noisy(n, k + extra, k, seed).validate();
    }

    #[test]
    fn uniform_always_feasible(n in 1usize..150, m in 1usize..40, p in 0.0f64..0.3, seed in 0u64..1000) {
        let inst = gen::uniform_random(n, m, p, seed);
        inst.validate();
        prop_assert!(inst.system.is_coverable());
    }

    #[test]
    fn zipf_always_feasible(n in 2usize..150, m in 1usize..40, theta in 0.5f64..2.0, cap_frac in 1usize..4, seed in 0u64..1000) {
        let cap = (n / cap_frac).max(1);
        gen::zipf(n, m, theta, cap, seed).validate();
    }

    #[test]
    fn sparse_respects_bound(n in 4usize..200, s in 1usize..20, seed in 0u64..1000) {
        let s = s.min(n);
        let k = n.div_ceil(s);
        let inst = gen::sparse(n, k + 10, s, seed);
        inst.validate();
        prop_assert!(inst.system.max_set_size() <= s);
    }

    #[test]
    fn greedy_adversarial_opt_is_two(levels in 1u32..10) {
        let inst = gen::greedy_adversarial(levels);
        inst.validate();
        prop_assert_eq!(inst.planted.as_ref().unwrap().len(), 2);
        prop_assert_eq!(inst.system.universe(), 2 * ((1usize << levels) - 1));
    }
}
