//! Property tests for the text serialisation: parse ∘ print = identity
//! on every generator's output, and parsing never panics on mutated
//! documents.

use proptest::prelude::*;
use sc_setsystem::{gen, io};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_planted(n in 2usize..120, extra in 0usize..25, seed in 0u64..500) {
        let k = 1 + n / 12;
        let inst = gen::planted(n, k + extra, k, seed);
        let back = io::from_str(&io::to_string(&inst)).expect("roundtrip");
        prop_assert_eq!(back.system, inst.system);
        prop_assert_eq!(back.planted, inst.planted);
    }

    #[test]
    fn roundtrip_uniform(n in 1usize..100, m in 1usize..30, seed in 0u64..500) {
        let inst = gen::uniform_random(n, m, 0.1, seed);
        let back = io::from_str(&io::to_string(&inst)).expect("roundtrip");
        prop_assert_eq!(back.system, inst.system);
    }

    #[test]
    fn parser_never_panics_on_corrupted_documents(
        seed in 0u64..200,
        cut in 0usize..400,
        junk in "[a-z0-9 \\n]{0,40}",
    ) {
        // Take a valid document, truncate it somewhere, splice junk in:
        // the parser must return Ok or Err but never panic.
        let inst = gen::planted(30, 12, 3, seed);
        let mut text = io::to_string(&inst);
        let cut = cut.min(text.len());
        // Cut on a char boundary.
        let mut boundary = cut;
        while !text.is_char_boundary(boundary) {
            boundary -= 1;
        }
        text.truncate(boundary);
        text.push_str(&junk);
        let _ = io::from_str(&text);
    }

    #[test]
    fn parse_errors_are_one_based_lines(bad_line in 1usize..5) {
        // Insert a malformed record at a known line; the reported line
        // number must point at it.
        let mut lines = vec![
            "p setcover 4 3".to_string(),
            "s 0 1".into(),
            "s 2".into(),
            "s 3".into(),
        ];
        lines.insert(bad_line, "q bogus".into());
        let text = lines.join("\n");
        let e = io::from_str(&text).expect_err("must fail");
        prop_assert_eq!(e.line, bad_line + 1);
    }
}
