//! Property tests for the `SCB1` binary format: round-trip fidelity on
//! arbitrary instances, and detection of arbitrary single-byte damage.

use proptest::prelude::*;
use sc_setsystem::{binary, Instance, SetSystem};

fn arb_instance() -> impl Strategy<Value = Instance> {
    (1usize..200).prop_flat_map(|universe| {
        let set = proptest::collection::vec(0..universe as u32, 0..universe.min(40));
        let sets = proptest::collection::vec(set, 0..20);
        let label = proptest::string::string_regex("[ -~]{0,30}").unwrap();
        (Just(universe), sets, label, proptest::bool::ANY).prop_map(
            |(universe, sets, label, plant)| {
                let m = sets.len();
                let system = SetSystem::from_sets(universe, sets);
                let planted = (plant && m > 0).then(|| (0..m as u32 / 2).collect());
                Instance {
                    system,
                    planted,
                    label,
                }
            },
        )
    })
}

/// Instances biased toward the format's edge cases: empty sets,
/// singleton universes, and sets holding the maximal element id
/// `universe - 1` (the largest delta-varint gap the encoder emits).
fn arb_edge_instance() -> impl Strategy<Value = Instance> {
    (1usize..64).prop_flat_map(|universe| {
        let max_id = universe as u32 - 1;
        let set = prop_oneof![
            Just(Vec::new()),   // empty set
            Just(vec![max_id]), // maximal id alone
            proptest::collection::vec(0..universe as u32, 0..16).prop_map(move |mut v| {
                v.push(max_id); // force the max id in (from_sets dedups)
                v
            }),
        ];
        let sets = proptest::collection::vec(set, 0..12);
        (Just(universe), sets).prop_map(|(universe, sets)| Instance {
            system: SetSystem::from_sets(universe, sets),
            planted: None,
            label: "edge".into(),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn round_trip_is_lossless(inst in arb_instance()) {
        let mut bytes = Vec::new();
        binary::write_instance_binary(&mut bytes, &inst).unwrap();
        let back = binary::read_instance_binary(&bytes[..]).unwrap();
        prop_assert_eq!(back.system.universe(), inst.system.universe());
        prop_assert_eq!(back.system.num_sets(), inst.system.num_sets());
        for (id, elems) in inst.system.iter() {
            prop_assert_eq!(back.system.set(id), elems);
        }
        prop_assert_eq!(back.planted, inst.planted);
        prop_assert_eq!(back.label, inst.label);
    }

    #[test]
    fn text_binary_text_chain_is_lossless(inst in arb_instance()) {
        // text → binary → text: the full conversion pipeline `sctool
        // convert` exercises must be the identity on the text form.
        // One initial text round-trip normalises the label (the reader
        // trims whitespace and names label-less instances "from-file").
        let via_text = sc_setsystem::io::from_str(&sc_setsystem::io::to_string(&inst)).unwrap();
        let text1 = sc_setsystem::io::to_string(&via_text);
        let mut bytes = Vec::new();
        binary::write_instance_binary(&mut bytes, &via_text).unwrap();
        let via_binary = binary::read_instance_binary(&bytes[..]).unwrap();
        let text2 = sc_setsystem::io::to_string(&via_binary);
        prop_assert_eq!(text1, text2);
    }

    #[test]
    fn edge_instances_survive_the_conversion_chain(inst in arb_edge_instance()) {
        // Empty sets, singleton universes, and maximal element ids are
        // exactly where length prefixes and delta gaps degenerate.
        let text1 = sc_setsystem::io::to_string(&inst);
        let mut bytes = Vec::new();
        binary::write_instance_binary(&mut bytes, &inst).unwrap();
        let back = binary::read_instance_binary(&bytes[..]).unwrap();
        prop_assert_eq!(back.system.universe(), inst.system.universe());
        for (id, elems) in inst.system.iter() {
            prop_assert_eq!(back.system.set(id), elems);
        }
        let text2 = sc_setsystem::io::to_string(&back);
        prop_assert_eq!(text1, text2);
    }

    #[test]
    fn any_truncation_errors_cleanly(inst in arb_instance(), frac in 0.0f64..1.0) {
        let mut bytes = Vec::new();
        binary::write_instance_binary(&mut bytes, &inst).unwrap();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        // Truncation strictly before the end marker must error (the
        // reader demands the 'E' byte), and must never panic.
        let result = binary::read_instance_binary(&bytes[..cut]);
        prop_assert!(result.is_err());
    }

    #[test]
    fn single_byte_damage_never_silently_alters_content(
        inst in arb_instance(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = Vec::new();
        binary::write_instance_binary(&mut bytes, &inst).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        let mut damaged = bytes.clone();
        damaged[pos] ^= flip;
        match binary::read_instance_binary(&damaged[..]) {
            Err(_) => {} // detected — good
            Ok(back) => {
                // Undetected damage must be *harmless*: identical
                // structural content. (E.g. flipping a bit inside the
                // label's own bytes changes only the label, which the
                // format does not checksum — assert sets and header
                // survived.)
                prop_assert_eq!(back.system.universe(), inst.system.universe());
                prop_assert_eq!(back.system.num_sets(), inst.system.num_sets());
                for (id, elems) in inst.system.iter() {
                    prop_assert_eq!(back.system.set(id), elems);
                }
            }
        }
    }
}
