//! Property tests for the canonical representation: the dyadic
//! decomposition must partition every rectangle's projection exactly,
//! for arbitrary point sets and rectangles.

use proptest::prelude::*;
use sc_geometry::canonical::{decompose_rect, dyadic_cover, CanonicalStore, RankIndex};
use sc_geometry::{Point, Rect, Shape};

fn points() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..60)
        .prop_map(|ps| ps.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

fn rect() -> impl Strategy<Value = Rect> {
    (0.0f64..100.0, 0.0f64..100.0, 0.0f64..100.0, 0.0f64..100.0)
        .prop_map(|(a, b, c, d)| Rect::new(a.min(c), b.min(d), a.max(c), b.max(d)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn decomposition_partitions_projection(pts in points(), r in rect()) {
        let idx = RankIndex::build(&pts);
        let mut expect: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| r.contains(p))
            .map(|(i, _)| i as u32)
            .collect();
        expect.sort_unstable();

        let pieces = decompose_rect(&idx, &r);
        let mut got: Vec<u32> = pieces
            .iter()
            .flat_map(|p| idx.members_in(p.x_lo, p.x_hi, p.y_lo, p.y_hi))
            .collect();
        got.sort_unstable();
        // Exact partition: same members, no duplicates.
        prop_assert_eq!(&got, &expect, "pieces must partition the projection");
        let mut dedup = got.clone();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), got.len(), "no point in two pieces");
        // Piece count stays within the O(log²) budget.
        let s = pts.len() as f64;
        let budget = (2.0 * s.log2().ceil().max(1.0)).powi(2) as usize + 4;
        prop_assert!(pieces.len() <= budget, "{} pieces", pieces.len());
    }

    #[test]
    fn dyadic_cover_partitions_any_interval(lo in 0u32..500, len in 1u32..500) {
        let hi = lo + len;
        let mut blocks = Vec::new();
        dyadic_cover(lo, hi, &mut blocks);
        let mut at = lo;
        for &(a, b) in &blocks {
            prop_assert_eq!(a, at);
            let size = b - a;
            prop_assert!(size.is_power_of_two());
            prop_assert_eq!(a % size, 0);
            at = b;
        }
        prop_assert_eq!(at, hi);
    }

    #[test]
    fn store_never_loses_coverage(pts in points(), rects in proptest::collection::vec(rect(), 1..12)) {
        // Union of materialised candidates == union of shallow shapes'
        // projections (no coverage is lost by canonicalisation).
        let idx = RankIndex::build(&pts);
        let w = pts.len(); // no shallowness cutoff for this property
        let mut store = CanonicalStore::new();
        let mut expect: Vec<bool> = vec![false; pts.len()];
        for r in &rects {
            store.add_shape(&idx, &pts, &Shape::Rect(*r), w);
            for (i, p) in pts.iter().enumerate() {
                if r.contains(p) {
                    expect[i] = true;
                }
            }
        }
        let mut got = vec![false; pts.len()];
        for (_, bits) in store.materialize(&idx) {
            for pos in bits.ones() {
                got[pos as usize] = true;
            }
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn shallow_disc_projections_are_near_linear(seed in 0u64..200) {
        // The Clarkson–Shor fact behind Lemma 4.4's disc recipe: for
        // random points and discs, the number of DISTINCT projections of
        // discs containing at most w points is near-linear in n — which
        // is why dedupe-only storage suffices for discs while rectangles
        // need decomposition (Figure 1.2).
        use sc_geometry::canonical::storage_comparison;
        use sc_geometry::instances;
        let inst = instances::random_discs(400, 600, 8, seed);
        let w = 16;
        let cmp = storage_comparison(&inst.points, &inst.shapes, w);
        // Discs go through the explicit/dedupe path, so canonical
        // candidates == distinct shallow projections here.
        let n = inst.points.len() as f64;
        prop_assert!(
            (cmp.canonical_candidates as f64) < 3.0 * n,
            "{} distinct shallow disc projections for n={n}",
            cmp.canonical_candidates
        );
    }

    #[test]
    fn dedupe_only_store_agrees_on_coverage(pts in points(), rects in proptest::collection::vec(rect(), 1..8)) {
        let idx = RankIndex::build(&pts);
        let w = pts.len();
        let mut canonical = CanonicalStore::new();
        let mut plain = CanonicalStore::dedupe_only();
        for r in &rects {
            canonical.add_shape(&idx, &pts, &Shape::Rect(*r), w);
            plain.add_shape(&idx, &pts, &Shape::Rect(*r), w);
        }
        let union = |store: &CanonicalStore| {
            let mut acc = vec![false; pts.len()];
            for (_, bits) in store.materialize(&idx) {
                for pos in bits.ones() {
                    acc[pos as usize] = true;
                }
            }
            acc
        };
        prop_assert_eq!(union(&canonical), union(&plain));
    }
}
