//! `algGeomSC` — the streaming Points-Shapes Set Cover algorithm of
//! Figure 4.1 (Theorem 4.6): `Õ(n)` space, `O(1)` passes, `O(ρ)`
//! approximation for discs, axis-parallel rectangles, and fat triangles.
//!
//! Per guessed optimum `k`, each of the `1/δ` iterations makes three
//! passes over the shape stream:
//!
//! 1. take every shape covering ≥ `n/k` leftover points (heavy sets);
//! 2. sample `S` from the leftovers and build the canonical
//!    representation of `(S, F)` (`compCanonicalRep`);
//! 3. solve set cover offline on the canonical candidates, then replace
//!    each chosen candidate by a concrete superset shape from the
//!    stream.
//!
//! One final pass covers stragglers with one arbitrary shape each — the
//! step that lets the sample shrink to `c·ρ·k·(n/k)^δ·log m·log n` and
//! the space to `Õ(n)`.

use crate::canonical::{CanonicalStore, RankIndex};
use crate::instances::GeomInstance;
use crate::point::Point;
use crate::shapes::Shape;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_bitset::{BitSet, HeapWords};
use sc_core::sampling::sample_from_bitset;
use sc_stream::{ItemStream, SpaceMeter, Tracked};

/// `Point` owns no heap memory (two inline `f64`s).
impl HeapWords for Point {
    fn heap_words(&self) -> usize {
        0
    }
}

/// Configuration of [`AlgGeomSc`].
#[derive(Debug, Clone, Copy)]
pub struct AlgGeomScConfig {
    /// Trade-off parameter; Theorem 4.6 fixes δ = 1/4 for the headline
    /// `O(1)`-pass `Õ(n)`-space result (analysis needs δ ≤ 1/4).
    pub delta: f64,
    /// RNG seed.
    pub seed: u64,
    /// Constant `c` in the per-iteration sample size `c·k·(n/k)^δ` (the
    /// paper's polylog and ρ factors absorbed, as in `iterSetCover`).
    pub sample_constant: f64,
    /// Shallowness cutoff multiplier: shapes with more than
    /// `w_factor·|S|/k` sampled points are skipped by
    /// `compCanonicalRep` (Lemma 4.5 shows 3 suffices w.h.p.).
    pub w_factor: f64,
    /// Ablation switch: store rectangles as dyadic canonical pieces
    /// (`true`, the paper's design) or as verbatim deduplicated
    /// projections (`false` — quadratic on the Figure 1.2 family).
    pub decompose_rects: bool,
}

impl Default for AlgGeomScConfig {
    fn default() -> Self {
        Self {
            delta: 0.25,
            seed: 0,
            sample_constant: 2.0,
            w_factor: 3.0,
            decompose_rects: true,
        }
    }
}

/// Measured outcome of one [`AlgGeomSc`] run.
#[derive(Debug, Clone)]
pub struct GeomReport {
    /// The emitted cover (shape ids).
    pub cover: Vec<u32>,
    /// Passes over the shape stream (parallel-accounted across guesses).
    pub passes: usize,
    /// Peak working memory in words (summed across parallel guesses).
    pub space_words: usize,
    /// Largest canonical store observed in any iteration (candidates).
    pub max_store_candidates: usize,
    /// Largest sample drawn in any iteration.
    pub max_sample: usize,
    /// `Ok` if the cover was verified against the instance.
    pub verified: Result<(), String>,
}

impl GeomReport {
    /// Solution size.
    pub fn cover_size(&self) -> usize {
        self.cover.len()
    }
}

/// The `algGeomSC` algorithm (Figure 4.1).
///
/// # Examples
///
/// ```
/// use sc_geometry::{instances, AlgGeomSc, AlgGeomScConfig};
///
/// let inst = instances::random_discs(400, 200, 8, 1);
/// let report = AlgGeomSc::new(AlgGeomScConfig::default()).run(&inst);
/// assert!(report.verified.is_ok());
/// ```
#[derive(Debug)]
pub struct AlgGeomSc {
    cfg: AlgGeomScConfig,
    max_store: usize,
    max_sample: usize,
}

impl AlgGeomSc {
    /// Creates the algorithm with the given configuration.
    pub fn new(cfg: AlgGeomScConfig) -> Self {
        assert!(cfg.delta > 0.0 && cfg.delta <= 1.0);
        Self {
            cfg,
            max_store: 0,
            max_sample: 0,
        }
    }

    /// Runs on a geometric instance, returning full measurements.
    pub fn run(&mut self, inst: &GeomInstance) -> GeomReport {
        self.max_store = 0;
        self.max_sample = 0;
        let stream = ItemStream::new(&inst.shapes);
        let meter = SpaceMeter::new();
        let n = inst.points.len();

        let mut best: Option<Vec<u32>> = None;
        let mut child_passes = Vec::new();
        let mut child_peaks = Vec::new();
        let mut i = 0u32;
        loop {
            let k = 1usize << i;
            let child = stream.fork();
            let cm = meter.fork();
            let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(0xabcd_ef01 * k as u64));
            if let Some(sol) = self.run_guess(k, &child, &cm, &mut rng, &inst.points) {
                if best.as_ref().is_none_or(|b| sol.len() < b.len()) {
                    best = Some(sol);
                }
            }
            child_passes.push(child.passes());
            child_peaks.push(cm.peak());
            if k >= n.max(1) {
                break;
            }
            i += 1;
        }
        stream.absorb_parallel(child_passes);
        meter.absorb_parallel(child_peaks);

        let cover = best.unwrap_or_default();
        let verified = inst.verify_cover(&cover);
        GeomReport {
            cover,
            passes: stream.passes(),
            space_words: meter.peak(),
            max_store_candidates: self.max_store,
            max_sample: self.max_sample,
            verified,
        }
    }

    fn sample_size(&self, k: usize, n: usize) -> usize {
        let ratio = (n as f64 / k as f64).max(1.0);
        (self.cfg.sample_constant * k as f64 * ratio.powf(self.cfg.delta))
            .ceil()
            .max(1.0) as usize
    }

    fn run_guess(
        &mut self,
        k: usize,
        stream: &ItemStream<'_, Shape>,
        meter: &SpaceMeter,
        rng: &mut StdRng,
        points: &[Point],
    ) -> Option<Vec<u32>> {
        let n = points.len();
        let m = stream.len();
        let iters = (1.0 / self.cfg.delta).ceil() as usize;

        let mut live = Tracked::new(BitSet::full(n), meter);
        let mut in_sol = Tracked::new(BitSet::new(m.max(1)), meter);
        let mut sol: Tracked<Vec<u32>> = Tracked::new(Vec::new(), meter);
        // Reusable scratch for one shape's covered points (≤ n ids).
        let mut scratch: Tracked<Vec<u32>> = Tracked::new(Vec::with_capacity(n), meter);

        for _ in 0..iters {
            if live.get().is_empty() {
                break;
            }
            // Pass 1: heavy shapes (gain ≥ n/k over the leftovers).
            let threshold = (n as f64 / k as f64).max(1.0);
            for (id, shape) in stream.pass() {
                if in_sol.get().contains(id) {
                    continue;
                }
                let hits = collect_hits(live.get(), points, shape, &mut scratch, meter);
                if hits as f64 >= threshold {
                    take_shape(&mut sol, &mut in_sol, &mut live, id, &scratch, meter);
                }
            }
            if live.get().is_empty() {
                break;
            }

            // Sample S from the leftovers.
            let want = self.sample_size(k, n).min(live.get().count());
            let sample_ids = Tracked::new(sample_from_bitset(live.get(), want, rng), meter);
            self.max_sample = self.max_sample.max(sample_ids.get().len());
            let sample_points = Tracked::new(
                sample_ids
                    .get()
                    .iter()
                    .map(|&e| points[e as usize])
                    .collect::<Vec<Point>>(),
                meter,
            );
            let idx = Tracked::new(RankIndex::build(sample_points.get()), meter);
            let s = sample_points.get().len();
            let w = ((self.cfg.w_factor * s as f64 / k as f64).ceil() as usize).max(1);

            // Pass 2: compCanonicalRep — build the deduplicated store.
            let mut store = Tracked::new(
                if self.cfg.decompose_rects {
                    CanonicalStore::new()
                } else {
                    CanonicalStore::dedupe_only()
                },
                meter,
            );
            for (id, shape) in stream.pass() {
                if in_sol.get().contains(id) {
                    continue;
                }
                store.mutate(meter, |st| {
                    st.add_shape(idx.get(), sample_points.get(), shape, w)
                });
            }
            self.max_store = self.max_store.max(store.get().len());

            // Offline solve on the canonical candidates (best effort:
            // sample points no candidate covers wait for later sweeps).
            let materialized = store.get().materialize(idx.get());
            let cand_sets = Tracked::new(
                materialized
                    .into_iter()
                    .map(|(_, b)| b)
                    .collect::<Vec<BitSet>>(),
                meter,
            );
            let mut target = BitSet::new(s);
            for b in cand_sets.get() {
                target.union_with(b);
            }
            meter.charge(target.as_words().len());
            let picks = sc_offline::greedy(cand_sets.get(), &target)
                .expect("target restricted to the coverable subset");
            meter.release(target.as_words().len());
            let mut sol_s = Tracked::new(
                picks
                    .iter()
                    .map(|&i| cand_sets.get()[i].clone())
                    .collect::<Vec<BitSet>>(),
                meter,
            );
            let _ = cand_sets.release(meter);

            // Pass 3: replace canonical candidates by superset shapes.
            let mut shape_bits = BitSet::new(s);
            meter.charge(shape_bits.as_words().len());
            for (id, shape) in stream.pass() {
                if sol_s.get().is_empty() {
                    break;
                }
                if in_sol.get().contains(id) {
                    continue;
                }
                shape_bits.clear();
                for (j, p) in sample_points.get().iter().enumerate() {
                    if shape.contains(p) {
                        shape_bits.insert(j as u32);
                    }
                }
                let mut took = false;
                sol_s.mutate(meter, |pieces| {
                    pieces.retain(|piece| {
                        if piece.is_subset(&shape_bits) {
                            took = true;
                            false
                        } else {
                            true
                        }
                    });
                });
                if took {
                    collect_hits(live.get(), points, shape, &mut scratch, meter);
                    take_shape(&mut sol, &mut in_sol, &mut live, id, &scratch, meter);
                }
            }
            meter.release(shape_bits.as_words().len());

            let _ = sol_s.release(meter);
            let _ = store.release(meter);
            let _ = idx.release(meter);
            let _ = sample_points.release(meter);
            let _ = sample_ids.release(meter);
        }

        // Final pass: one arbitrary covering shape per leftover point.
        if !live.get().is_empty() {
            for (id, shape) in stream.pass() {
                if live.get().is_empty() {
                    break;
                }
                if in_sol.get().contains(id) {
                    continue;
                }
                let hits = collect_hits(live.get(), points, shape, &mut scratch, meter);
                if hits > 0 {
                    take_shape(&mut sol, &mut in_sol, &mut live, id, &scratch, meter);
                }
            }
        }

        let done = live.get().is_empty();
        let _ = scratch.release(meter);
        let _ = live.release(meter);
        let _ = in_sol.release(meter);
        let sol = sol.release(meter);
        done.then_some(sol)
    }
}

/// Fills `scratch` with the live points the shape contains; returns the
/// count.
fn collect_hits(
    live: &BitSet,
    points: &[Point],
    shape: &Shape,
    scratch: &mut Tracked<Vec<u32>>,
    meter: &SpaceMeter,
) -> usize {
    scratch.mutate(meter, |buf| {
        buf.clear();
        buf.extend(live.ones().filter(|&e| shape.contains(&points[e as usize])));
        buf.len()
    })
}

/// Emits shape `id` and removes its hits (pre-collected in `scratch`)
/// from the leftover set.
fn take_shape(
    sol: &mut Tracked<Vec<u32>>,
    in_sol: &mut Tracked<BitSet>,
    live: &mut Tracked<BitSet>,
    id: u32,
    scratch: &Tracked<Vec<u32>>,
    meter: &SpaceMeter,
) {
    sol.mutate(meter, |s| s.push(id));
    in_sol.mutate(meter, |s| {
        s.insert(id);
    });
    let hits = scratch.get();
    live.mutate(meter, |l| {
        for &e in hits {
            l.remove(e);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances;

    #[test]
    fn covers_disc_instances() {
        let inst = instances::random_discs(500, 300, 8, 3);
        let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
        let report = alg.run(&inst);
        assert!(report.verified.is_ok(), "{:?}", report.verified);
        let opt = inst.planted.as_ref().unwrap().len();
        assert!(
            report.cover_size() <= 12 * opt,
            "|sol|={}",
            report.cover_size()
        );
    }

    #[test]
    fn covers_rect_instances() {
        let inst = instances::random_rects(400, 250, 6, 5);
        let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
        let report = alg.run(&inst);
        assert!(report.verified.is_ok(), "{:?}", report.verified);
    }

    #[test]
    fn covers_fat_triangle_instances() {
        let inst = instances::random_fat_triangles(300, 150, 5, 7);
        let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
        let report = alg.run(&inst);
        assert!(report.verified.is_ok(), "{:?}", report.verified);
    }

    #[test]
    fn constant_passes_at_delta_quarter() {
        let inst = instances::random_discs(600, 400, 8, 9);
        let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
        let report = alg.run(&inst);
        assert!(report.verified.is_ok());
        // 3 passes × 4 iterations + final ≤ 13, parallel-accounted.
        assert!(report.passes <= 13, "passes = {}", report.passes);
    }

    #[test]
    fn two_line_runs_in_subquadratic_space() {
        let inst = instances::two_line(48, None, 2); // m = 2304 shapes
        let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
        let report = alg.run(&inst);
        assert!(report.verified.is_ok(), "{:?}", report.verified);
        let m = inst.shapes.len();
        let n = inst.points.len();
        // The canonical store never approaches the m = n²/4 distinct
        // verbatim projections (the Figure 1.2 trap).
        assert!(
            report.max_store_candidates * 4 < m,
            "store {} vs m={m}",
            report.max_store_candidates
        );
        assert!(
            report.max_store_candidates <= 8 * n,
            "store {} not Õ(n={n})",
            report.max_store_candidates
        );
        // Total space (summed over all ~log n parallel guesses) stays
        // far below one guess's worth of verbatim projection storage.
        let naive_words_one_guess = 2 * m;
        let guesses = (n as f64).log2().ceil() as usize + 1;
        assert!(
            report.space_words < guesses * naive_words_one_guess / 2,
            "space {} vs naive {}",
            report.space_words,
            guesses * naive_words_one_guess
        );
    }

    #[test]
    fn handles_tiny_instances() {
        let inst = instances::random_discs(3, 2, 1, 1);
        let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
        let report = alg.run(&inst);
        assert!(report.verified.is_ok());
    }
}
