//! Geometric workloads: planted covers per shape family, and the
//! Figure 1.2 adversarial two-line construction.

use crate::point::Point;
use crate::shapes::{Disc, Rect, Shape, Triangle};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use sc_setsystem::SetSystem;

/// A geometric set cover instance: points (elements) and shapes (sets).
#[derive(Debug, Clone)]
pub struct GeomInstance {
    /// The ground set of points; indices are the element ids.
    pub points: Vec<Point>,
    /// The streamed family of ranges; indices are the set ids.
    pub shapes: Vec<Shape>,
    /// A cover planted by the generator, if it planted one.
    pub planted: Option<Vec<u32>>,
    /// Generator label with parameters.
    pub label: String,
}

impl GeomInstance {
    /// Materialises the abstract set system (point-in-shape incidence).
    ///
    /// This costs `O(mn)` time and space — it is the *offline* view that
    /// streaming algorithms cannot afford, used for verification and for
    /// comparing against the combinatorial solvers.
    pub fn to_set_system(&self) -> SetSystem {
        let sets = self
            .shapes
            .iter()
            .map(|s| {
                self.points
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| s.contains(p))
                    .map(|(i, _)| i as u32)
                    .collect()
            })
            .collect();
        SetSystem::from_sets(self.points.len(), sets)
    }

    /// Checks that `cover` (shape ids) covers every point.
    pub fn verify_cover(&self, cover: &[u32]) -> Result<(), String> {
        'points: for (i, p) in self.points.iter().enumerate() {
            for &id in cover {
                let shape = self
                    .shapes
                    .get(id as usize)
                    .ok_or_else(|| format!("unknown shape id {id}"))?;
                if shape.contains(p) {
                    continue 'points;
                }
            }
            return Err(format!("point {i} ({}, {}) uncovered", p.x, p.y));
        }
        Ok(())
    }

    /// Asserts generator invariants (planted cover really covers).
    pub fn validate(&self) {
        if let Some(p) = &self.planted {
            self.verify_cover(p)
                .unwrap_or_else(|e| panic!("{}: planted cover invalid: {e}", self.label));
        }
    }
}

/// Points clustered inside `k` planted discs, plus random decoy discs.
///
/// Each point is drawn uniformly inside one of `k` discs of radius `r`
/// whose centres are spread over the unit square; the `k` planting discs
/// are part of the family (so `OPT ≤ k`) and the remaining `m - k`
/// shapes are random discs of radius up to `r`.
pub fn random_discs(n: usize, m: usize, k: usize, seed: u64) -> GeomInstance {
    assert!(k >= 1 && m >= k);
    let mut rng = StdRng::seed_from_u64(seed);
    let r = 0.5 / (k as f64).sqrt();
    let centers: Vec<Point> = (0..k)
        .map(|_| Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
        .collect();
    let points = (0..n)
        .map(|i| in_disc(&centers[i % k], r, &mut rng))
        .collect();
    let mut shapes: Vec<Shape> = centers
        .iter()
        .map(|&c| Shape::Disc(Disc::new(c, r * 1.0001)))
        .collect();
    for _ in k..m {
        let c = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        shapes.push(Shape::Disc(Disc::new(c, rng.random_range(0.05 * r..r))));
    }
    let planted = shuffle_with_planted(&mut shapes, k, &mut rng);
    let inst = GeomInstance {
        points,
        shapes,
        planted: Some(planted),
        label: format!("discs(n={n},m={m},k={k},seed={seed})"),
    };
    inst.validate();
    inst
}

/// Points covered by a planted tiling of the unit square into `k`
/// vertical strips, plus random decoy rectangles.
pub fn random_rects(n: usize, m: usize, k: usize, seed: u64) -> GeomInstance {
    assert!(k >= 1 && m >= k);
    let mut rng = StdRng::seed_from_u64(seed);
    let w = 1.0 / k as f64;
    let points: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
        .collect();
    // Planted cover: k strips that tile the square exactly (for any k).
    let mut shapes: Vec<Shape> = (0..k)
        .map(|i| {
            Shape::Rect(Rect::new(
                i as f64 * w - 1e-9,
                -1e-9,
                (i + 1) as f64 * w + 1e-9,
                1.0 + 1e-9,
            ))
        })
        .collect();
    for _ in k..m {
        let x = rng.random_range(0.0..0.8);
        let y = rng.random_range(0.0..0.8);
        shapes.push(Shape::Rect(Rect::new(
            x,
            y,
            x + rng.random_range(0.05..0.2),
            y + rng.random_range(0.05..0.2),
        )));
    }
    let planted = shuffle_with_planted(&mut shapes, k, &mut rng);
    let inst = GeomInstance {
        points,
        shapes,
        planted: Some(planted),
        label: format!("rects(n={n},m={m},k={k},seed={seed})"),
    };
    inst.validate();
    inst
}

/// Points clustered inside `k` planted fat (near-equilateral) triangles,
/// plus random fat decoys.
pub fn random_fat_triangles(n: usize, m: usize, k: usize, seed: u64) -> GeomInstance {
    assert!(k >= 1 && m >= k);
    let mut rng = StdRng::seed_from_u64(seed);
    let side = 1.2 / (k as f64).sqrt();
    let tris: Vec<Triangle> = (0..k)
        .map(|_| {
            let base = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
            fat_triangle(base, side, &mut rng)
        })
        .collect();
    let points: Vec<Point> = (0..n)
        .map(|i| in_triangle(&tris[i % k], &mut rng))
        .collect();
    let mut shapes: Vec<Shape> = tris.into_iter().map(Shape::Triangle).collect();
    for _ in k..m {
        let base = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        shapes.push(Shape::Triangle(fat_triangle(
            base,
            rng.random_range(0.2 * side..side),
            &mut rng,
        )));
    }
    let planted = shuffle_with_planted(&mut shapes, k, &mut rng);
    let inst = GeomInstance {
        points,
        shapes,
        planted: Some(planted),
        label: format!("fat_triangles(n={n},m={m},k={k},seed={seed})"),
    };
    inst.validate();
    inst
}

/// The Figure 1.2 adversarial construction: `half` points on each of two
/// parallel lines of slope 1, and one rectangle per (top, bottom) pair —
/// `half²` distinct rectangles, each containing *exactly two points*.
///
/// Storing distinct projections explicitly therefore costs `Ω(n²)`;
/// the canonical representation stores `Õ(n)` pieces instead, which is
/// exactly what experiment E5 measures. The planted optimum pairs point
/// `i` with point `i` (`half` rectangles).
///
/// `m_cap` limits the family size for big `half` (the planted diagonal
/// is always kept; remaining pairs are sampled uniformly).
pub fn two_line(half: usize, m_cap: Option<usize>, seed: u64) -> GeomInstance {
    assert!(half >= 1);
    let d = half as f64 + 10.0;
    let top: Vec<Point> = (0..half)
        .map(|i| Point::new(i as f64, i as f64 + d))
        .collect();
    let bottom: Vec<Point> = (0..half)
        .map(|j| Point::new((half + j) as f64, (half + j) as f64 - d))
        .collect();
    let mut points = top.clone();
    points.extend_from_slice(&bottom);

    let rect_for = |i: usize, j: usize| {
        // Upper-left corner at top[i], lower-right corner at bottom[j].
        Shape::Rect(Rect::new(top[i].x, bottom[j].y, bottom[j].x, top[i].y))
    };

    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for i in 0..half {
        for j in 0..half {
            if i != j {
                pairs.push((i, j));
            }
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    pairs.shuffle(&mut rng);
    if let Some(cap) = m_cap {
        pairs.truncate(cap.saturating_sub(half));
    }

    // Diagonal (the planted optimum) first, then the sampled pairs; the
    // whole family is then shuffled to avoid a benign stream order.
    let mut shapes: Vec<Shape> = (0..half).map(|i| rect_for(i, i)).collect();
    shapes.extend(pairs.into_iter().map(|(i, j)| rect_for(i, j)));
    let planted = shuffle_with_planted(&mut shapes, half, &mut rng);

    let inst = GeomInstance {
        points,
        shapes,
        planted: Some(planted),
        label: format!(
            "two_line(half={half},m={},seed={seed})",
            half + m_cap.map_or(half * half - half, |c| c.saturating_sub(half))
        ),
    };
    inst.validate();
    inst
}

/// Gaussian-cluster workload: points drawn from `k` tight clusters at
/// random centres, covered by a planted disc per cluster; decoy discs
/// concentrate *around* the clusters (not uniformly), so density near
/// the data mimics real spatial workloads where candidate facilities
/// follow demand.
///
/// The skew matters for the streaming algorithms: heavy sets are
/// genuinely heavy (a planted disc holds ~n/k points) while decoys near
/// a cluster edge clip off shallow crescents — many distinct shallow
/// projections, the regime the canonical machinery is for.
pub fn clustered_discs(n: usize, m: usize, k: usize, seed: u64) -> GeomInstance {
    assert!(k >= 1 && m >= k);
    let mut rng = StdRng::seed_from_u64(seed);
    let sigma = 0.25 / (k as f64).sqrt();
    let centers: Vec<Point> = (0..k)
        .map(|_| Point::new(rng.random_range(0.2..0.8), rng.random_range(0.2..0.8)))
        .collect();
    // Box–Muller normal deviates, clamped to 3σ per axis, so the
    // planted disc of radius 3σ√2 provably contains its cluster.
    let normal = |rng: &mut StdRng| -> f64 {
        let u1: f64 = rng.random_range(f64::EPSILON..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        z.clamp(-3.0, 3.0)
    };
    let points: Vec<Point> = (0..n)
        .map(|i| {
            let c = &centers[i % k];
            Point::new(
                c.x + sigma * normal(&mut rng),
                c.y + sigma * normal(&mut rng),
            )
        })
        .collect();
    let mut shapes: Vec<Shape> = centers
        .iter()
        .map(|&c| {
            Shape::Disc(Disc::new(
                c,
                3.0 * std::f64::consts::SQRT_2 * sigma * 1.0001,
            ))
        })
        .collect();
    for i in k..m {
        // Decoys hover near a cluster: centre at up to 4σ away.
        let c = &centers[i % k];
        let off = Point::new(
            c.x + rng.random_range(-4.0 * sigma..4.0 * sigma),
            c.y + rng.random_range(-4.0 * sigma..4.0 * sigma),
        );
        shapes.push(Shape::Disc(Disc::new(
            off,
            rng.random_range(0.3 * sigma..2.0 * sigma),
        )));
    }
    let planted = shuffle_with_planted(&mut shapes, k, &mut rng);
    let inst = GeomInstance {
        points,
        shapes,
        planted: Some(planted),
        label: format!("clustered_discs(n={n},m={m},k={k},seed={seed})"),
    };
    inst.validate();
    inst
}

/// Grid workload: points on a jittered `g × g` lattice, covered by a
/// planted tiling of `k ≈ g` row rectangles, with axis-aligned decoy
/// windows of mixed aspect ratios.
///
/// Lattice alignment is the adversarial texture for rank-space
/// decomposition: many rectangles share projection boundaries, so the
/// canonical store's dedup actually fires (unlike on generic random
/// inputs where all projections differ).
pub fn grid_rects(n: usize, m: usize, seed: u64) -> GeomInstance {
    assert!(n >= 4 && m >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let g = (n as f64).sqrt().ceil() as usize;
    let cell = 1.0 / g as f64;
    let jitter = 0.2 * cell;
    let points: Vec<Point> = (0..n)
        .map(|i| {
            let (row, col) = (i / g, i % g);
            Point::new(
                (col as f64 + 0.5) * cell + rng.random_range(-jitter..jitter),
                (row as f64 + 0.5) * cell + rng.random_range(-jitter..jitter),
            )
        })
        .collect();
    // Planted cover: one rectangle per occupied row.
    let rows = n.div_ceil(g);
    let k = rows.min(m);
    let mut shapes: Vec<Shape> = (0..k)
        .map(|row| {
            Shape::Rect(Rect::new(
                -1e-9,
                row as f64 * cell - 1e-9,
                1.0 + 1e-9,
                (row + 1) as f64 * cell + 1e-9,
            ))
        })
        .collect();
    for _ in k..m {
        // Windows snapped near cell boundaries, mixed aspect ratios.
        let x0 = rng.random_range(0..g) as f64 * cell;
        let y0 = rng.random_range(0..g) as f64 * cell;
        let w = rng.random_range(1..=4.min(g)) as f64 * cell;
        let h = rng.random_range(1..=4.min(g)) as f64 * cell;
        shapes.push(Shape::Rect(Rect::new(
            x0,
            y0,
            (x0 + w).min(1.0),
            (y0 + h).min(1.0),
        )));
    }
    let planted = shuffle_with_planted(&mut shapes, k, &mut rng);
    let inst = GeomInstance {
        points,
        shapes,
        planted: Some(planted),
        label: format!("grid_rects(n={n},m={m},seed={seed})"),
    };
    inst.validate();
    inst
}

/// Uniform point inside a disc (rejection sampling).
fn in_disc(center: &Point, radius: f64, rng: &mut StdRng) -> Point {
    loop {
        let dx = rng.random_range(-radius..=radius);
        let dy = rng.random_range(-radius..=radius);
        if dx * dx + dy * dy <= radius * radius {
            return Point::new(center.x + dx, center.y + dy);
        }
    }
}

/// Uniform point inside a triangle (barycentric sampling).
fn in_triangle(t: &Triangle, rng: &mut StdRng) -> Point {
    let (mut u, mut v) = (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
    if u + v > 1.0 {
        u = 1.0 - u;
        v = 1.0 - v;
    }
    Point::new(
        t.a.x + u * (t.b.x - t.a.x) + v * (t.c.x - t.a.x),
        t.a.y + u * (t.b.y - t.a.y) + v * (t.c.y - t.a.y),
    )
}

/// A near-equilateral (hence fat) triangle with random orientation.
fn fat_triangle(base: Point, side: f64, rng: &mut StdRng) -> Triangle {
    let th = rng.random_range(0.0..std::f64::consts::TAU);
    let vertex = |angle: f64| {
        Point::new(
            base.x + side * f64::cos(angle),
            base.y + side * f64::sin(angle),
        )
    };
    Triangle::new(
        vertex(th),
        vertex(th + std::f64::consts::TAU / 3.0),
        vertex(th + 2.0 * std::f64::consts::TAU / 3.0),
    )
}

/// Shuffles the family; the first `k` shapes are the planted cover and
/// their post-shuffle ids are returned.
fn shuffle_with_planted(shapes: &mut [Shape], k: usize, rng: &mut StdRng) -> Vec<u32> {
    let m = shapes.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.shuffle(rng);
    let mut relabel = vec![0u32; m];
    let mut shuffled = vec![shapes[0]; m];
    for (new, &old) in order.iter().enumerate() {
        relabel[old] = new as u32;
        shuffled[new] = shapes[old];
    }
    shapes.copy_from_slice(&shuffled);
    (0..k).map(|i| relabel[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disc_instance_validates_with_opt_at_most_k() {
        let inst = random_discs(200, 60, 5, 1);
        assert_eq!(inst.planted.as_ref().unwrap().len(), 5);
        assert_eq!(inst.points.len(), 200);
        assert_eq!(inst.shapes.len(), 60);
    }

    #[test]
    fn rect_instance_validates() {
        for k in [1, 3, 4, 7] {
            random_rects(150, 40, k, 2).validate();
        }
    }

    #[test]
    fn triangle_instance_is_fat() {
        let inst = random_fat_triangles(120, 30, 4, 3);
        for s in &inst.shapes {
            if let Shape::Triangle(t) = s {
                assert!(t.fatness() < 2.0, "α = {}", t.fatness());
            }
        }
    }

    #[test]
    fn two_line_each_rect_covers_exactly_two_points() {
        let inst = two_line(16, None, 4);
        assert_eq!(inst.points.len(), 32);
        assert_eq!(inst.shapes.len(), 16 * 16, "all pairs present");
        for s in &inst.shapes {
            let covered = inst.points.iter().filter(|p| s.contains(p)).count();
            assert_eq!(covered, 2, "each rectangle covers exactly 2 points");
        }
        assert_eq!(inst.planted.as_ref().unwrap().len(), 16);
    }

    #[test]
    fn two_line_projections_are_all_distinct() {
        // The crux of Figure 1.2: quadratically many *distinct* shallow
        // projections.
        let inst = two_line(12, None, 5);
        let system = inst.to_set_system();
        let mut seen = std::collections::HashSet::new();
        for (_, set) in system.iter() {
            assert!(seen.insert(set.to_vec()), "duplicate projection");
        }
        assert_eq!(seen.len(), 144);
    }

    #[test]
    fn two_line_cap_subsamples_but_keeps_diagonal() {
        let inst = two_line(10, Some(30), 6);
        assert_eq!(inst.shapes.len(), 30);
        inst.validate();
    }

    #[test]
    fn to_set_system_matches_contains() {
        let inst = random_discs(50, 20, 3, 7);
        let system = inst.to_set_system();
        for (id, set) in system.iter() {
            let shape = &inst.shapes[id as usize];
            for (i, p) in inst.points.iter().enumerate() {
                assert_eq!(shape.contains(p), set.contains(&(i as u32)));
            }
        }
    }

    #[test]
    fn verify_cover_rejects_bad_covers() {
        let inst = random_discs(30, 10, 2, 8);
        assert!(inst.verify_cover(&[]).is_err());
        assert!(inst.verify_cover(&[999]).is_err());
        assert!(inst.verify_cover(inst.planted.as_ref().unwrap()).is_ok());
    }

    #[test]
    fn clustered_discs_planted_cover_is_valid() {
        for seed in 0..5 {
            let inst = clustered_discs(400, 200, 6, seed);
            assert!(
                inst.verify_cover(inst.planted.as_ref().unwrap()).is_ok(),
                "seed {seed}"
            );
            assert_eq!(inst.planted.as_ref().unwrap().len(), 6);
            assert_eq!(inst.shapes.len(), 200);
        }
    }

    #[test]
    fn grid_rects_planted_cover_is_valid() {
        for seed in 0..5 {
            let inst = grid_rects(400, 100, seed);
            assert!(
                inst.verify_cover(inst.planted.as_ref().unwrap()).is_ok(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn grid_rects_share_projection_boundaries() {
        // Lattice snapping makes duplicate projections common — the
        // texture the canonical dedup exists for.
        let inst = grid_rects(256, 400, 3);
        let system = inst.to_set_system();
        let mut projections: Vec<&[u32]> = (0..system.num_sets() as u32)
            .map(|i| system.set(i))
            .filter(|s| !s.is_empty())
            .collect();
        let before = projections.len();
        projections.sort();
        projections.dedup();
        assert!(
            projections.len() < before,
            "expected duplicate projections on the lattice ({before} distinct)"
        );
    }

    #[test]
    fn new_families_are_solvable_by_alg_geom_sc() {
        use crate::{AlgGeomSc, AlgGeomScConfig};
        for inst in [clustered_discs(300, 150, 5, 2), grid_rects(256, 128, 2)] {
            let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
            let report = alg.run(&inst);
            assert!(
                report.verified.is_ok(),
                "{}: {:?}",
                inst.label,
                report.verified
            );
        }
    }
}
