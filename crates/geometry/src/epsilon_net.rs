//! ε-nets for geometric range spaces.
//!
//! An ε-net for points vs shapes is a subset `N` of the points such
//! that every shape containing at least `ε·n` points contains a net
//! point. The paper leans on this machinery twice: the relative
//! (p, ε)-approximation sampling of Lemma 2.5 is the two-sided
//! strengthening, and the cited constructions \[AES10, EHR12, CS89\]
//! control how many *shallow* ranges a canonical family needs.
//!
//! This module implements the classical Haussler–Welzl theorem: a
//! uniform random sample of size `O((d/ε)·log(1/ε) + (1/ε)·log(1/q))`
//! is an ε-net with probability `1 − q`, where `d` is the VC dimension
//! of the range family — together with an exhaustive verifier that the
//! tests and benches use to *measure* the failure probability instead
//! of assuming it. Weighted nets (the engine of the
//! Brönnimann–Goodrich solver in [`crate::bronnimann_goodrich`]) draw
//! proportionally to point weights.

use crate::point::Point;
use crate::shapes::Shape;
use rand::rngs::StdRng;
use rand::RngExt;

/// The three range families of Section 4, with their VC dimensions.
///
/// The dimensions are the standard ones: halfplane-bounded convex
/// ranges of a fixed shape class in the plane. They feed the
/// Haussler–Welzl sample size; a looser value only enlarges the net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeFamily {
    /// Discs in the plane (`d = 3`).
    Discs,
    /// Axis-parallel rectangles (`d = 4`).
    Rects,
    /// α-fat triangles; triangles in general position have `d = 7`.
    FatTriangles,
}

impl ShapeFamily {
    /// VC dimension of the family.
    pub fn vc_dim(&self) -> usize {
        match self {
            ShapeFamily::Discs => 3,
            ShapeFamily::Rects => 4,
            ShapeFamily::FatTriangles => 7,
        }
    }

    /// The family a concrete shape belongs to.
    pub fn of(shape: &Shape) -> Self {
        match shape {
            Shape::Disc(_) => ShapeFamily::Discs,
            Shape::Rect(_) => ShapeFamily::Rects,
            Shape::Triangle(_) => ShapeFamily::FatTriangles,
        }
    }
}

/// Haussler–Welzl sample size for an ε-net of range family `family`
/// with failure probability `q`.
pub fn net_sample_size(family: ShapeFamily, eps: f64, q: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
    assert!(q > 0.0 && q < 1.0, "q must be in (0,1)");
    let d = family.vc_dim() as f64;
    let size = (4.0 / eps) * (d * (4.0 / eps).ln().max(1.0) + (2.0 / q).ln());
    size.ceil() as usize
}

/// Draws a uniform ε-net candidate: `net_sample_size` point indices
/// sampled with replacement (duplicates removed, order sorted).
///
/// The Haussler–Welzl theorem makes the result an ε-net with
/// probability `≥ 1 − q`; pair with [`verify_epsilon_net`] when a
/// certificate is needed.
pub fn sample_epsilon_net(
    points: &[Point],
    family: ShapeFamily,
    eps: f64,
    q: f64,
    rng: &mut StdRng,
) -> Vec<u32> {
    let want = net_sample_size(family, eps, q).min(points.len());
    let mut net: Vec<u32> = (0..want)
        .map(|_| rng.random_range(0..points.len()) as u32)
        .collect();
    net.sort_unstable();
    net.dedup();
    net
}

/// Draws a *weighted* ε-net candidate: each of the
/// `net_sample_size` draws picks point `i` with probability
/// `w[i] / Σw`. This is the net the Brönnimann–Goodrich reweighting
/// loop recomputes after every doubling.
///
/// # Panics
///
/// Panics if `points` and `weights` disagree in length or the total
/// weight is not positive and finite.
pub fn sample_weighted_epsilon_net(
    points: &[Point],
    weights: &[f64],
    family: ShapeFamily,
    eps: f64,
    q: f64,
    rng: &mut StdRng,
) -> Vec<u32> {
    assert_eq!(points.len(), weights.len());
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "total weight must be positive and finite"
    );
    // Prefix sums once, binary search per draw.
    let mut prefix = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        assert!(w >= 0.0, "weights must be non-negative");
        acc += w;
        prefix.push(acc);
    }
    let want = net_sample_size(family, eps, q).min(points.len());
    let mut net: Vec<u32> = (0..want)
        .map(|_| {
            let r = rng.random_range(0.0..total);
            prefix.partition_point(|&p| p <= r).min(points.len() - 1) as u32
        })
        .collect();
    net.sort_unstable();
    net.dedup();
    net
}

/// Exhaustively verifies the ε-net property of `net` against the given
/// `shapes` under point weights `weights` (pass all-ones for the
/// unweighted property).
///
/// Returns `None` when every shape of weight `≥ eps · Σw` contains a
/// net point, otherwise `Some(i)` for a violating shape index — the
/// witness the Brönnimann–Goodrich loop doubles on.
pub fn verify_epsilon_net(
    points: &[Point],
    weights: &[f64],
    shapes: &[Shape],
    net: &[u32],
    eps: f64,
) -> Option<usize> {
    assert_eq!(points.len(), weights.len());
    let total: f64 = weights.iter().sum();
    let threshold = eps * total;
    'shapes: for (i, shape) in shapes.iter().enumerate() {
        let w: f64 = points
            .iter()
            .zip(weights)
            .filter(|(p, _)| shape.contains(p))
            .map(|(_, &w)| w)
            .sum();
        if w < threshold {
            continue; // light range: exempt
        }
        for &id in net {
            if shape.contains(&points[id as usize]) {
                continue 'shapes;
            }
        }
        return Some(i);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances;
    use rand::SeedableRng;

    #[test]
    fn sample_size_grows_with_dimension_and_shrinks_with_eps() {
        let q = 0.1;
        let d3 = net_sample_size(ShapeFamily::Discs, 0.1, q);
        let d7 = net_sample_size(ShapeFamily::FatTriangles, 0.1, q);
        assert!(d7 > d3, "higher VC dimension needs a bigger net");
        let coarse = net_sample_size(ShapeFamily::Rects, 0.5, q);
        let fine = net_sample_size(ShapeFamily::Rects, 0.05, q);
        assert!(fine > coarse, "smaller eps needs a bigger net");
    }

    #[test]
    fn family_of_shape() {
        let inst = instances::random_discs(16, 8, 2, 1);
        assert_eq!(ShapeFamily::of(&inst.shapes[0]), ShapeFamily::Discs);
        let inst = instances::random_rects(16, 8, 2, 1);
        assert_eq!(ShapeFamily::of(&inst.shapes[0]), ShapeFamily::Rects);
        let inst = instances::random_fat_triangles(16, 8, 2, 1);
        assert_eq!(ShapeFamily::of(&inst.shapes[0]), ShapeFamily::FatTriangles);
    }

    #[test]
    fn uniform_nets_pass_verification_at_the_advertised_rate() {
        // 20 independent nets at q = 0.2: allow a minority of failures
        // (expected ≤ 4), fail the test only if more than half miss.
        let inst = instances::random_rects(400, 200, 8, 7);
        let mut rng = StdRng::seed_from_u64(99);
        let eps = 0.15;
        let mut failures = 0;
        let weights = vec![1.0; inst.points.len()];
        for _ in 0..20 {
            let net = sample_epsilon_net(&inst.points, ShapeFamily::Rects, eps, 0.2, &mut rng);
            if verify_epsilon_net(&inst.points, &weights, &inst.shapes, &net, eps).is_some() {
                failures += 1;
            }
        }
        assert!(failures <= 10, "ε-net sampling failed {failures}/20 times");
    }

    #[test]
    fn verifier_catches_a_planted_violation() {
        // One shape holds 3/4 of the points; an empty net must fail.
        let inst = instances::random_discs(64, 32, 4, 3);
        let weights = vec![1.0; inst.points.len()];
        // eps tiny → every nonempty shape is heavy; empty net violates.
        let eps = 1.0 / (4.0 * inst.points.len() as f64);
        let violation = verify_epsilon_net(&inst.points, &weights, &inst.shapes, &[], eps);
        assert!(violation.is_some(), "empty net cannot be an ε-net here");
    }

    #[test]
    fn weighted_sampling_prefers_heavy_points() {
        // All weight on point 0: every draw must return it.
        let inst = instances::random_rects(50, 10, 2, 4);
        let mut weights = vec![0.0; inst.points.len()];
        weights[0] = 5.0;
        let mut rng = StdRng::seed_from_u64(8);
        let net = sample_weighted_epsilon_net(
            &inst.points,
            &weights,
            ShapeFamily::Rects,
            0.25,
            0.1,
            &mut rng,
        );
        assert_eq!(net, vec![0]);
    }

    #[test]
    fn weighted_net_protects_heavy_regions() {
        let inst = instances::random_discs(300, 150, 6, 11);
        let mut rng = StdRng::seed_from_u64(21);
        // Skew weights toward the first hundred points.
        let weights: Vec<f64> = (0..inst.points.len())
            .map(|i| if i < 100 { 10.0 } else { 0.1 })
            .collect();
        let eps = 0.2;
        let mut ok = 0;
        for _ in 0..10 {
            let net = sample_weighted_epsilon_net(
                &inst.points,
                &weights,
                ShapeFamily::Discs,
                eps,
                0.2,
                &mut rng,
            );
            if verify_epsilon_net(&inst.points, &weights, &inst.shapes, &net, eps).is_none() {
                ok += 1;
            }
        }
        assert!(ok >= 5, "weighted nets verified only {ok}/10 times");
    }
}
