//! Plain-text serialisation of geometric instances.
//!
//! Same line-oriented philosophy as `sc_setsystem::io`:
//!
//! ```text
//! c comment
//! g points-shapes <num_points> <num_shapes>
//! v 1.5 2.25              (one per point: "v x y")
//! d 0.5 0.5 0.25          (disc: cx cy r)
//! r 0 0 1 1               (rect: x0 y0 x1 y1)
//! t 0 0 1 0 0.5 0.8       (triangle: ax ay bx by cx cy)
//! o 0 2                   (optional known cover: shape ids)
//! l label
//! ```
//!
//! Coordinates round-trip through `{:?}` formatting, which prints the
//! shortest decimal that parses back to the identical `f64`, so
//! write → read is bit-exact.

use crate::instances::GeomInstance;
use crate::point::Point;
use crate::shapes::{Disc, Rect, Shape, Triangle};
use std::fmt;
use std::io::{BufRead, Write};

/// A parse failure, with 1-based line number and explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Writes a geometric instance in the text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_instance<W: Write>(w: &mut W, inst: &GeomInstance) -> std::io::Result<()> {
    writeln!(w, "c streaming-set-cover geometric instance")?;
    writeln!(
        w,
        "g points-shapes {} {}",
        inst.points.len(),
        inst.shapes.len()
    )?;
    for p in &inst.points {
        writeln!(w, "v {:?} {:?}", p.x, p.y)?;
    }
    for s in &inst.shapes {
        match s {
            Shape::Disc(d) => writeln!(w, "d {:?} {:?} {:?}", d.center.x, d.center.y, d.radius)?,
            Shape::Rect(r) => writeln!(w, "r {:?} {:?} {:?} {:?}", r.x0, r.y0, r.x1, r.y1)?,
            Shape::Triangle(t) => writeln!(
                w,
                "t {:?} {:?} {:?} {:?} {:?} {:?}",
                t.a.x, t.a.y, t.b.x, t.b.y, t.c.x, t.c.y
            )?,
        }
    }
    if let Some(p) = &inst.planted {
        write!(w, "o")?;
        for id in p {
            write!(w, " {id}")?;
        }
        writeln!(w)?;
    }
    if !inst.label.is_empty() {
        writeln!(w, "l {}", inst.label)?;
    }
    Ok(())
}

fn parse_floats(line: usize, rest: &str, want: usize) -> Result<Vec<f64>, ParseError> {
    let vals: Result<Vec<f64>, _> = rest.split_whitespace().map(str::parse).collect();
    let vals = vals.map_err(|_| err(line, format!("bad number in {rest:?}")))?;
    if vals.len() != want {
        return Err(err(
            line,
            format!("expected {want} numbers, got {}", vals.len()),
        ));
    }
    if vals.iter().any(|v| !v.is_finite()) {
        return Err(err(line, "non-finite coordinate"));
    }
    Ok(vals)
}

/// Reads a geometric instance from the text format.
///
/// # Errors
///
/// Returns a [`ParseError`] for structural violations (missing header,
/// wrong counts, malformed coordinates, degenerate shapes).
pub fn read_instance<R: BufRead>(r: R) -> Result<GeomInstance, ParseError> {
    let mut header: Option<(usize, usize)> = None;
    let mut points: Vec<Point> = Vec::new();
    let mut shapes: Vec<Shape> = Vec::new();
    let mut planted: Option<Vec<u32>> = None;
    let mut label = String::new();

    for (idx, line) in r.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| err(lineno, format!("I/O error: {e}")))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let (tag, rest) = line.split_at(1);
        let rest = rest.trim();
        match tag {
            "g" => {
                if header.is_some() {
                    return Err(err(lineno, "duplicate header"));
                }
                let mut it = rest.split_whitespace();
                if it.next() != Some("points-shapes") {
                    return Err(err(lineno, "expected 'g points-shapes <n> <m>'"));
                }
                let n = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "bad point count"))?;
                let m = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "bad shape count"))?;
                header = Some((n, m));
            }
            "v" => {
                let v = parse_floats(lineno, rest, 2)?;
                points.push(Point::new(v[0], v[1]));
            }
            "d" => {
                let v = parse_floats(lineno, rest, 3)?;
                if v[2] < 0.0 {
                    return Err(err(lineno, "negative radius"));
                }
                shapes.push(Shape::Disc(Disc::new(Point::new(v[0], v[1]), v[2])));
            }
            "r" => {
                let v = parse_floats(lineno, rest, 4)?;
                if v[0] > v[2] || v[1] > v[3] {
                    return Err(err(lineno, "rect corners out of order"));
                }
                shapes.push(Shape::Rect(Rect::new(v[0], v[1], v[2], v[3])));
            }
            "t" => {
                let v = parse_floats(lineno, rest, 6)?;
                let (a, b, c) = (
                    Point::new(v[0], v[1]),
                    Point::new(v[2], v[3]),
                    Point::new(v[4], v[5]),
                );
                let area2 = ((b.x - a.x) * (c.y - a.y) - (c.x - a.x) * (b.y - a.y)).abs();
                if area2 <= 0.0 {
                    return Err(err(lineno, "degenerate triangle"));
                }
                shapes.push(Shape::Triangle(Triangle::new(a, b, c)));
            }
            "o" => {
                if planted.is_some() {
                    return Err(err(lineno, "duplicate cover line"));
                }
                let ids: Result<Vec<u32>, _> = rest.split_whitespace().map(str::parse).collect();
                planted = Some(ids.map_err(|_| err(lineno, "bad shape id"))?);
            }
            "l" => label = rest.to_string(),
            other => return Err(err(lineno, format!("unknown record type {other:?}"))),
        }
    }

    let (n, m) = header.ok_or_else(|| err(0, "missing header"))?;
    if points.len() != n {
        return Err(err(
            0,
            format!("declared {n} points, found {}", points.len()),
        ));
    }
    if shapes.len() != m {
        return Err(err(
            0,
            format!("declared {m} shapes, found {}", shapes.len()),
        ));
    }
    if let Some(p) = &planted {
        if let Some(&bad) = p.iter().find(|&&id| (id as usize) >= m) {
            return Err(err(0, format!("cover references unknown shape {bad}")));
        }
    }
    Ok(GeomInstance {
        points,
        shapes,
        planted,
        label: if label.is_empty() {
            "from-file".into()
        } else {
            label
        },
    })
}

/// Convenience: serialise to a `String`.
pub fn to_string(inst: &GeomInstance) -> String {
    let mut buf = Vec::new();
    write_instance(&mut buf, inst).expect("writing to memory cannot fail");
    String::from_utf8(buf).expect("format is ASCII")
}

/// Convenience: parse from a `&str`.
pub fn from_str(s: &str) -> Result<GeomInstance, ParseError> {
    read_instance(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances;

    #[test]
    fn roundtrip_all_shape_families() {
        for inst in [
            instances::random_discs(40, 20, 3, 1),
            instances::random_rects(40, 20, 3, 2),
            instances::random_fat_triangles(40, 20, 3, 3),
            instances::two_line(6, None, 4),
        ] {
            let text = to_string(&inst);
            let back = from_str(&text).expect("roundtrip");
            assert_eq!(back.points.len(), inst.points.len());
            assert_eq!(back.shapes, inst.shapes);
            assert_eq!(back.planted, inst.planted);
            // Coordinates are bit-exact, so covers still verify.
            back.validate();
        }
    }

    #[test]
    fn minimal_document() {
        let inst = from_str("g points-shapes 1 2\nv 0.5 0.5\nd 0.5 0.5 1\nr 0 0 1 1\n").unwrap();
        assert_eq!(inst.points.len(), 1);
        assert_eq!(inst.shapes.len(), 2);
        assert!(inst.verify_cover(&[0]).is_ok());
    }

    #[test]
    fn errors_are_informative() {
        let cases: Vec<(&str, &str)> = vec![
            ("v 1 2\n", "missing header"),
            ("g points-shapes 1 0\nv 1\n", "expected 2 numbers"),
            ("g points-shapes 0 1\nd 0 0 -1\n", "negative radius"),
            ("g points-shapes 0 1\nr 1 0 0 1\n", "corners out of order"),
            (
                "g points-shapes 0 1\nt 0 0 1 1 2 2\n",
                "degenerate triangle",
            ),
            ("g points-shapes 2 0\nv 0 0\n", "declared 2 points, found 1"),
            ("g points-shapes 0 0\no 3\n", "unknown shape 3"),
            ("g points-shapes 0 0\nx 1\n", "unknown record"),
            ("g points-shapes 0 1\nd 0 zzz 1\n", "bad number"),
            ("g points-shapes 0 1\nd 0 nan 1\n", "non-finite"),
        ];
        for (text, needle) in cases {
            let e = from_str(text).expect_err(text);
            assert!(e.to_string().contains(needle), "{text:?} → {e}");
        }
    }
}
