//! Canonical representations of shallow geometric ranges
//! (Definition 4.1, Lemmas 4.2–4.4).
//!
//! The problem: distinct shallow projections can number `Ω(n²)`
//! (Figure 1.2), so `algGeomSC` cannot afford to store the projection of
//! every small shape verbatim. The paper's fix, following
//! \[AES10\]/\[EHR12\], is a *canonical family*: a near-linear universe of
//! pieces such that every shallow range is a union of a few pieces, and
//! only *distinct pieces* are stored.
//!
//! Our construction (DESIGN.md substitution 4): work in **rank space**
//! of the sampled points. A rectangle's projection is exactly a product
//! of an x-rank interval and a y-rank interval, and each interval splits
//! into `O(log)` maximal dyadic blocks, so the rectangle splits into
//! `O(log²)` **dyadic product pieces** ([`Piece`]) that dedupe across
//! the whole family: for a fixed dyadic x-block `I`, a piece `(I, J)` is
//! only stored when nonempty, and each of the `|I ∩ S|` points lies in
//! `O(log)` dyadic y-blocks, so the family holds `O(|S| log|S| · log)`
//! distinct pieces — near-linear, versus `Ω(n²)` verbatim projections.
//! Discs (and fat triangles) follow the paper's own recipe from
//! Lemma 4.4: store *deduplicated explicit projections*, whose count
//! Clarkson–Shor bounds near-linearly for shallow discs.

use crate::point::Point;
use crate::shapes::{Rect, Shape};
use sc_bitset::{BitSet, HeapWords};
use std::collections::HashSet;

/// Rank index of a point sample: positions sorted by x and by y, with
/// inverse rank arrays, enabling rectangle → rank-rectangle conversion
/// by binary search.
#[derive(Debug, Clone)]
pub struct RankIndex {
    /// Sample positions sorted by x-coordinate.
    by_x: Vec<u32>,
    /// `x_rank[pos]` = rank of sample position `pos` in x-order.
    x_rank: Vec<u32>,
    /// `y_rank[pos]` = rank of sample position `pos` in y-order.
    y_rank: Vec<u32>,
    /// x-coordinates in rank order (binary-search domain).
    xs: Vec<f64>,
    /// y-coordinates in rank order.
    ys: Vec<f64>,
}

impl RankIndex {
    /// Builds the index over the given sample points. `O(s log s)`.
    pub fn build(points: &[Point]) -> Self {
        let s = points.len();
        let mut by_x: Vec<u32> = (0..s as u32).collect();
        by_x.sort_by(|&a, &b| {
            points[a as usize]
                .x
                .total_cmp(&points[b as usize].x)
                .then(a.cmp(&b))
        });
        let mut by_y: Vec<u32> = (0..s as u32).collect();
        by_y.sort_by(|&a, &b| {
            points[a as usize]
                .y
                .total_cmp(&points[b as usize].y)
                .then(a.cmp(&b))
        });
        let mut x_rank = vec![0u32; s];
        for (r, &pos) in by_x.iter().enumerate() {
            x_rank[pos as usize] = r as u32;
        }
        let mut y_rank = vec![0u32; s];
        for (r, &pos) in by_y.iter().enumerate() {
            y_rank[pos as usize] = r as u32;
        }
        let xs = by_x.iter().map(|&p| points[p as usize].x).collect();
        let ys = by_y.iter().map(|&p| points[p as usize].y).collect();
        Self {
            by_x,
            x_rank,
            y_rank,
            xs,
            ys,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.by_x.len()
    }

    /// `true` when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.by_x.is_empty()
    }

    /// Half-open x-rank range of points with `x ∈ [x0, x1]`.
    pub fn x_range(&self, x0: f64, x1: f64) -> (u32, u32) {
        (lower_bound(&self.xs, x0), upper_bound(&self.xs, x1))
    }

    /// Half-open y-rank range of points with `y ∈ [y0, y1]`.
    pub fn y_range(&self, y0: f64, y1: f64) -> (u32, u32) {
        (lower_bound(&self.ys, y0), upper_bound(&self.ys, y1))
    }

    /// Sample position holding x-rank `r`.
    pub fn pos_at_x_rank(&self, r: u32) -> u32 {
        self.by_x[r as usize]
    }

    /// y-rank of a sample position.
    pub fn y_rank_of(&self, pos: u32) -> u32 {
        self.y_rank[pos as usize]
    }

    /// x-rank of a sample position.
    pub fn x_rank_of(&self, pos: u32) -> u32 {
        self.x_rank[pos as usize]
    }

    /// The sample positions inside a rank rectangle, by scanning the
    /// (narrower) x-rank side.
    pub fn members_in(&self, x_lo: u32, x_hi: u32, y_lo: u32, y_hi: u32) -> Vec<u32> {
        (x_lo..x_hi)
            .map(|r| self.by_x[r as usize])
            .filter(|&pos| {
                let yr = self.y_rank[pos as usize];
                (y_lo..y_hi).contains(&yr)
            })
            .collect()
    }
}

impl HeapWords for RankIndex {
    fn heap_words(&self) -> usize {
        let u32s = self.by_x.capacity() + self.x_rank.capacity() + self.y_rank.capacity();
        let f64s = self.xs.capacity() + self.ys.capacity();
        (u32s * 4).div_ceil(8) + f64s
    }
}

/// First index whose value is `>= key`.
fn lower_bound(sorted: &[f64], key: f64) -> u32 {
    sorted.partition_point(|&v| v < key) as u32
}

/// First index whose value is `> key`.
fn upper_bound(sorted: &[f64], key: f64) -> u32 {
    sorted.partition_point(|&v| v <= key) as u32
}

/// A canonical piece: a dyadic x-rank block × a dyadic y-rank block.
///
/// Both intervals are half-open and dyadic-aligned (`lo = a·2^ℓ`,
/// `hi = (a+1)·2^ℓ`), so pieces generated by different shapes coincide
/// exactly and dedupe structurally. Two pieces with the same key contain
/// the same points — the canonical-family property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Piece {
    /// Dyadic x-rank interval `[x_lo, x_hi)`.
    pub x_lo: u32,
    /// Exclusive end of the x interval.
    pub x_hi: u32,
    /// Dyadic y-rank interval `[y_lo, y_hi)`.
    pub y_lo: u32,
    /// Exclusive end of the y interval.
    pub y_hi: u32,
}

/// Splits `[lo, hi)` into maximal dyadic blocks, appending to `out`.
///
/// Standard greedy alignment: at each step take the largest power of two
/// that is aligned at `lo` and fits below `hi`. At most `2·log₂(hi-lo)`
/// blocks.
pub fn dyadic_cover(mut lo: u32, hi: u32, out: &mut Vec<(u32, u32)>) {
    while lo < hi {
        let align = if lo == 0 {
            31
        } else {
            lo.trailing_zeros().min(31)
        };
        let mut size = 1u32 << align;
        while size > hi - lo {
            size >>= 1;
        }
        out.push((lo, lo + size));
        lo += size;
    }
}

/// Decomposes a rectangle's projection onto the indexed sample into
/// nonempty canonical pieces.
///
/// The pieces partition exactly the rectangle's points (each point lands
/// in precisely one dyadic product block), so
/// `rect ∩ S = ⊎ pieces` — Definition 4.1 with `c₁ = O(log²|S|)`.
pub fn decompose_rect(idx: &RankIndex, rect: &Rect) -> Vec<Piece> {
    let (xa, xb) = idx.x_range(rect.x0, rect.x1);
    let (ya, yb) = idx.y_range(rect.y0, rect.y1);
    if xa >= xb || ya >= yb {
        return Vec::new();
    }
    let mut xs = Vec::new();
    dyadic_cover(xa, xb, &mut xs);
    let mut ys = Vec::new();
    dyadic_cover(ya, yb, &mut ys);

    // Assign each member point to its unique (x-block, y-block) pair;
    // emit only the nonempty pieces.
    let mut seen: HashSet<Piece> = HashSet::new();
    let mut out = Vec::new();
    for r in xa..xb {
        let pos = idx.pos_at_x_rank(r);
        let yr = idx.y_rank_of(pos);
        if !(ya..yb).contains(&yr) {
            continue;
        }
        let &(x_lo, x_hi) = xs
            .iter()
            .find(|&&(lo, hi)| (lo..hi).contains(&r))
            .expect("x blocks cover the range");
        let &(y_lo, y_hi) = ys
            .iter()
            .find(|&&(lo, hi)| (lo..hi).contains(&yr))
            .expect("y blocks cover the range");
        let piece = Piece {
            x_lo,
            x_hi,
            y_lo,
            y_hi,
        };
        if seen.insert(piece) {
            out.push(piece);
        }
    }
    out
}

/// What one stored canonical candidate is.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Candidate {
    /// A dyadic product piece (rectangles).
    Piece(Piece),
    /// A deduplicated explicit projection: sorted sample positions
    /// (discs and fat triangles, per Lemma 4.4).
    Explicit(Box<[u32]>),
}

/// Deduplicating store of canonical candidates — the `F_S` that
/// `algGeomSC` holds in memory between passes.
#[derive(Debug)]
pub struct CanonicalStore {
    pieces: HashSet<Piece>,
    explicit: HashSet<Box<[u32]>>,
    /// Shapes skipped because their projection exceeded the shallowness
    /// cutoff `w` (they should have been caught by the heavy-set pass).
    pub skipped_deep: usize,
    /// Ablation switch: when `false`, rectangles are stored as verbatim
    /// deduplicated projections instead of dyadic pieces — the strategy
    /// Figure 1.2 defeats. Defaults to `true`.
    pub decompose_rects: bool,
}

impl Default for CanonicalStore {
    fn default() -> Self {
        Self {
            pieces: HashSet::new(),
            explicit: HashSet::new(),
            skipped_deep: 0,
            decompose_rects: true,
        }
    }
}

impl CanonicalStore {
    /// Empty store (with rectangle decomposition enabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty store with rectangle decomposition disabled (dedupe-only —
    /// the ablated configuration of experiment E12).
    pub fn dedupe_only() -> Self {
        Self {
            decompose_rects: false,
            ..Self::default()
        }
    }

    /// Adds one streamed shape's projection onto the sample.
    ///
    /// Rectangles are decomposed into dyadic pieces; discs and triangles
    /// store their explicit projection (deduplicated). Shapes whose
    /// projection exceeds `w` points are counted in
    /// [`skipped_deep`](CanonicalStore::skipped_deep) and not stored —
    /// the `compCanonicalRep(S, F, w)` cutoff of Figure 4.1.
    pub fn add_shape(&mut self, idx: &RankIndex, sample: &[Point], shape: &Shape, w: usize) {
        match shape {
            Shape::Rect(r) if self.decompose_rects => {
                let (xa, xb) = idx.x_range(r.x0, r.x1);
                let (ya, yb) = idx.y_range(r.y0, r.y1);
                if xa >= xb || ya >= yb {
                    return;
                }
                let members = idx.members_in(xa, xb, ya, yb);
                if members.is_empty() {
                    return;
                }
                if members.len() > w {
                    self.skipped_deep += 1;
                    return;
                }
                for piece in decompose_rect(idx, r) {
                    self.pieces.insert(piece);
                }
            }
            _ => {
                let mut proj: Vec<u32> = sample
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| shape.contains(p))
                    .map(|(i, _)| i as u32)
                    .collect();
                if proj.is_empty() {
                    return;
                }
                if proj.len() > w {
                    self.skipped_deep += 1;
                    return;
                }
                proj.sort_unstable();
                self.explicit.insert(proj.into_boxed_slice());
            }
        }
    }

    /// Number of stored dyadic pieces.
    pub fn piece_count(&self) -> usize {
        self.pieces.len()
    }

    /// Number of stored explicit projections.
    pub fn explicit_count(&self) -> usize {
        self.explicit.len()
    }

    /// Total stored candidates.
    pub fn len(&self) -> usize {
        self.pieces.len() + self.explicit.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialises every candidate as `(candidate, member bitset over
    /// the sample)` for the offline solver.
    pub fn materialize(&self, idx: &RankIndex) -> Vec<(Candidate, BitSet)> {
        let s = idx.len();
        let mut out = Vec::with_capacity(self.len());
        for &p in &self.pieces {
            let members = idx.members_in(p.x_lo, p.x_hi, p.y_lo, p.y_hi);
            out.push((Candidate::Piece(p), BitSet::from_iter(s, members)));
        }
        for e in &self.explicit {
            out.push((
                Candidate::Explicit(e.clone()),
                BitSet::from_iter(s, e.iter().copied()),
            ));
        }
        // Deterministic order for reproducible solves.
        out.sort_by(|a, b| {
            a.1.as_words()
                .cmp(b.1.as_words())
                .then_with(|| cand_key(&a.0).cmp(&cand_key(&b.0)))
        });
        out
    }
}

fn cand_key(c: &Candidate) -> (u32, u32, u32, u32, &[u32]) {
    match c {
        Candidate::Piece(p) => (p.x_lo, p.x_hi, p.y_lo, p.y_hi, &[]),
        Candidate::Explicit(e) => (u32::MAX, 0, 0, 0, e),
    }
}

impl HeapWords for CanonicalStore {
    fn heap_words(&self) -> usize {
        // Piece = 4×u32 = 2 words; explicit = ids at 2 per word + 1
        // spine word. Hash-table overhead is implementation detail and
        // excluded (the model stores the keys).
        let pieces = self.pieces.len() * 2;
        let explicit: usize = self.explicit.iter().map(|e| e.len().div_ceil(2) + 1).sum();
        pieces + explicit
    }
}

/// Storage counts for the Figure 1.2 experiment (E5): what the naive
/// dedup store and the canonical store would each hold for the whole
/// family, considering only shapes with at most `w` sample points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageComparison {
    /// Distinct verbatim projections (the naive approach).
    pub explicit_projections: usize,
    /// Words for the verbatim projections.
    pub explicit_words: usize,
    /// Distinct canonical candidates (pieces + non-rect projections).
    pub canonical_candidates: usize,
    /// Words for the canonical store.
    pub canonical_words: usize,
}

/// Computes both storage strategies over a full instance.
pub fn storage_comparison(points: &[Point], shapes: &[Shape], w: usize) -> StorageComparison {
    let idx = RankIndex::build(points);
    let mut naive: HashSet<Box<[u32]>> = HashSet::new();
    let mut canonical = CanonicalStore::new();
    for shape in shapes {
        let proj: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| shape.contains(p))
            .map(|(i, _)| i as u32)
            .collect();
        if proj.is_empty() || proj.len() > w {
            continue;
        }
        naive.insert(proj.clone().into_boxed_slice());
        canonical.add_shape(&idx, points, shape, w);
    }
    let explicit_words = naive.iter().map(|e| e.len().div_ceil(2) + 1).sum();
    StorageComparison {
        explicit_projections: naive.len(),
        explicit_words,
        canonical_candidates: canonical.len(),
        canonical_words: canonical.heap_words(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances;

    fn grid_points(side: usize) -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..side {
            for j in 0..side {
                pts.push(Point::new(i as f64, j as f64));
            }
        }
        pts
    }

    #[test]
    fn rank_index_roundtrips() {
        let pts = vec![
            Point::new(3.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(2.0, 0.0),
        ];
        let idx = RankIndex::build(&pts);
        assert_eq!(idx.len(), 3);
        // x-order: p1(1.0), p2(2.0), p0(3.0)
        assert_eq!(idx.pos_at_x_rank(0), 1);
        assert_eq!(idx.pos_at_x_rank(2), 0);
        assert_eq!(idx.x_rank_of(0), 2);
        // y-order: p2(0.0), p0(1.0), p1(2.0)
        assert_eq!(idx.y_rank_of(2), 0);
        assert_eq!(idx.y_rank_of(1), 2);
        assert_eq!(idx.x_range(1.5, 3.5), (1, 3));
        assert_eq!(idx.y_range(0.0, 1.0), (0, 2), "boundary inclusive");
    }

    #[test]
    fn dyadic_cover_is_a_partition_of_aligned_blocks() {
        for (lo, hi) in [(0u32, 16u32), (3, 17), (5, 6), (0, 1), (7, 64), (21, 22)] {
            let mut blocks = Vec::new();
            dyadic_cover(lo, hi, &mut blocks);
            // Contiguous, covering, dyadic-aligned.
            let mut at = lo;
            for &(a, b) in &blocks {
                assert_eq!(a, at);
                assert!(b > a);
                let size = b - a;
                assert!(size.is_power_of_two());
                assert_eq!(a % size, 0, "block [{a},{b}) misaligned");
                at = b;
            }
            assert_eq!(at, hi);
            assert!(blocks.len() as u32 <= 2 * 32);
        }
    }

    #[test]
    fn decompose_rect_partitions_the_projection() {
        let pts = grid_points(8);
        let idx = RankIndex::build(&pts);
        let rect = Rect::new(1.5, 2.5, 5.5, 6.5);
        let expect: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| rect.contains(p))
            .map(|(i, _)| i as u32)
            .collect();
        let pieces = decompose_rect(&idx, &rect);
        let mut got: Vec<u32> = Vec::new();
        for p in &pieces {
            got.extend(idx.members_in(p.x_lo, p.x_hi, p.y_lo, p.y_hi));
        }
        got.sort_unstable();
        let mut expect_sorted = expect;
        expect_sorted.sort_unstable();
        assert_eq!(
            got, expect_sorted,
            "pieces partition the projection exactly"
        );
        // Partition: no duplicates already checked by equality of sorted
        // vectors having the same length as the dedup'd expectation.
    }

    #[test]
    fn empty_rect_decomposes_to_nothing() {
        let pts = grid_points(4);
        let idx = RankIndex::build(&pts);
        assert!(decompose_rect(&idx, &Rect::new(10.0, 10.0, 11.0, 11.0)).is_empty());
    }

    #[test]
    fn two_line_canonical_store_is_near_linear() {
        // The headline E5 fact: quadratic verbatim, near-linear canonical.
        let inst = instances::two_line(32, None, 1);
        let n = inst.points.len(); // 64
        let cmp = storage_comparison(&inst.points, &inst.shapes, 2);
        assert_eq!(
            cmp.explicit_projections,
            32 * 32,
            "n²/4 distinct projections"
        );
        assert!(
            cmp.canonical_candidates < cmp.explicit_projections / 4,
            "canonical {} should be far below naive {}",
            cmp.canonical_candidates,
            cmp.explicit_projections
        );
        // Õ(n): allow a healthy polylog factor.
        let log2n = (n as f64).log2();
        assert!(
            (cmp.canonical_candidates as f64) < 4.0 * n as f64 * log2n,
            "canonical {} not Õ(n={n})",
            cmp.canonical_candidates
        );
    }

    #[test]
    fn store_dedupes_pieces_across_shapes() {
        let pts = grid_points(8);
        let idx = RankIndex::build(&pts);
        let mut store = CanonicalStore::new();
        // Same rectangle streamed twice → same pieces once.
        let r = Shape::Rect(Rect::new(0.5, 0.5, 3.5, 3.5));
        store.add_shape(&idx, &pts, &r, 64);
        let after_one = store.piece_count();
        store.add_shape(&idx, &pts, &r, 64);
        assert_eq!(store.piece_count(), after_one);
        assert!(after_one > 0);
    }

    #[test]
    fn deep_shapes_are_skipped() {
        let pts = grid_points(8);
        let idx = RankIndex::build(&pts);
        let mut store = CanonicalStore::new();
        let big = Shape::Rect(Rect::new(-1.0, -1.0, 9.0, 9.0));
        store.add_shape(&idx, &pts, &big, 3);
        assert_eq!(store.len(), 0);
        assert_eq!(store.skipped_deep, 1);
    }

    #[test]
    fn explicit_candidates_for_discs() {
        let pts = grid_points(4);
        let idx = RankIndex::build(&pts);
        let mut store = CanonicalStore::new();
        let d = Shape::Disc(crate::Disc::new(Point::new(0.0, 0.0), 1.1));
        store.add_shape(&idx, &pts, &d, 16);
        assert_eq!(store.explicit_count(), 1);
        // A different disc with the same projection dedupes.
        let d2 = Shape::Disc(crate::Disc::new(Point::new(0.05, 0.0), 1.1));
        store.add_shape(&idx, &pts, &d2, 16);
        assert_eq!(store.explicit_count(), 1);
    }

    #[test]
    fn materialize_matches_members() {
        let pts = grid_points(6);
        let idx = RankIndex::build(&pts);
        let mut store = CanonicalStore::new();
        store.add_shape(&idx, &pts, &Shape::Rect(Rect::new(0.5, 0.5, 4.5, 4.5)), 64);
        store.add_shape(
            &idx,
            &pts,
            &Shape::Disc(crate::Disc::new(Point::new(2.0, 2.0), 1.5)),
            64,
        );
        for (cand, bits) in store.materialize(&idx) {
            match cand {
                Candidate::Piece(p) => {
                    let members = idx.members_in(p.x_lo, p.x_hi, p.y_lo, p.y_hi);
                    assert_eq!(bits.to_vec(), {
                        let mut m = members;
                        m.sort_unstable();
                        m
                    });
                }
                Candidate::Explicit(e) => {
                    assert_eq!(bits.to_vec(), e.to_vec());
                }
            }
        }
    }
}
