//! Points in the plane.

/// A point in `R²`.
///
/// Plain `f64` coordinates; the generators keep coordinates well within
/// the exactly-representable range so containment tests are robust
/// without an exact-arithmetic layer (documented trade-off — the paper's
/// algorithms are combinatorial and never subtract nearly-equal
/// coordinates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Constructs a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Squared Euclidean distance to `other`.
    pub fn dist2(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist2_is_squared_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(b.dist2(&a), 25.0);
        assert_eq!(a.dist2(&a), 0.0);
    }
}
