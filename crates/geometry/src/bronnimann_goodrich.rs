//! The Brönnimann–Goodrich reweighting algorithm — the offline
//! geometric set cover oracle of Remark 4.7.
//!
//! Theorem 4.6 parameterises `algGeomSC` by an offline geometric solver
//! of quality `ρ_g`, and Remark 4.7 points at the multiplicative-weights
//! family (Agarwal–Pan's near-linear algorithm is a refinement of the
//! scheme implemented here). The algorithm solves **set cover** for
//! points vs shapes by running Brönnimann–Goodrich *hitting set* in the
//! dual range space: shapes carry weights, points act as ranges
//! (the range of a point is the set of shapes containing it), and a
//! weighted ε-net of *shapes* with `ε = 1/(2k)` is a candidate cover.
//! While some point is uncovered, that point's range is light (total
//! shape weight `< W/2k` — otherwise the net would have hit it whp),
//! so doubling the weights of the shapes containing it makes progress:
//! after `O(k·log(m/k))` doublings every point is covered, provided a
//! size-`k` cover exists. Guesses of `k` double until success.
//!
//! The cover size is the net size `O(k·d·log k)` — the `ρ_g = O(log k)`
//! band — and the whole run never materialises the `O(mn)` incidence
//! matrix: each iteration touches points and shapes through `O(1)`
//! containment tests.

use crate::epsilon_net::{net_sample_size, ShapeFamily};
use crate::point::Point;
use crate::shapes::Shape;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of [`bronnimann_goodrich`].
#[derive(Debug, Clone, Copy)]
pub struct BgConfig {
    /// RNG seed; the run is deterministic given the seed.
    pub seed: u64,
    /// Failure probability budget per net draw (smaller = larger nets,
    /// fewer restarts).
    pub net_failure: f64,
    /// Doubling budget multiplier: a guess `k` is abandoned after
    /// `⌈budget_factor · k · log₂(m/k + 2)⌉` weight doublings.
    pub budget_factor: f64,
    /// Reverse-deletion pruning of the final net: drop any shape whose
    /// removal leaves a cover. Preserves the `O(k·d·log k)` bound and
    /// shrinks the Haussler–Welzl constants dramatically in practice.
    pub prune: bool,
}

impl Default for BgConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            net_failure: 0.1,
            budget_factor: 8.0,
            prune: true,
        }
    }
}

/// Measured outcome of a [`bronnimann_goodrich`] run.
#[derive(Debug, Clone)]
pub struct BgOutcome {
    /// The cover (shape ids).
    pub cover: Vec<u32>,
    /// The successful guess of the optimum size.
    pub guessed_k: usize,
    /// Total weight doublings across all guesses.
    pub doublings: usize,
    /// Net draws across all guesses.
    pub net_draws: usize,
}

/// Offline geometric set cover by dual-range-space reweighting.
///
/// Returns `None` iff some point lies in no shape. The returned cover
/// is always verified internally before being handed back.
///
/// # Examples
///
/// ```
/// use sc_geometry::{bronnimann_goodrich, BgConfig, instances};
///
/// let inst = instances::random_discs(200, 100, 5, 42);
/// let out = bronnimann_goodrich(&inst.points, &inst.shapes, &BgConfig::default()).unwrap();
/// assert!(inst.verify_cover(&out.cover).is_ok());
/// ```
pub fn bronnimann_goodrich(
    points: &[Point],
    shapes: &[Shape],
    cfg: &BgConfig,
) -> Option<BgOutcome> {
    if points.is_empty() {
        return Some(BgOutcome {
            cover: Vec::new(),
            guessed_k: 0,
            doublings: 0,
            net_draws: 0,
        });
    }
    // Feasibility: every point must lie in some shape.
    if points.iter().any(|p| !shapes.iter().any(|s| s.contains(p))) {
        return None;
    }
    let m = shapes.len();
    let family = ShapeFamily::of(&shapes[0]);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut doublings_total = 0usize;
    let mut net_draws_total = 0usize;

    let mut k = 1usize;
    loop {
        let eps = 1.0 / (2.0 * k as f64);
        let budget =
            (cfg.budget_factor * k as f64 * ((m as f64 / k as f64) + 2.0).log2()).ceil() as usize;
        let mut weight = vec![1.0f64; m];
        for _ in 0..=budget {
            let net = weighted_shape_net(shapes, &weight, family, eps, cfg.net_failure, &mut rng);
            net_draws_total += 1;
            match uncovered_point(points, shapes, &net) {
                None => {
                    let cover = if cfg.prune {
                        reverse_delete(points, shapes, net)
                    } else {
                        net
                    };
                    return Some(BgOutcome {
                        cover,
                        guessed_k: k,
                        doublings: doublings_total,
                        net_draws: net_draws_total,
                    });
                }
                Some(p) => {
                    // Double the weights of the shapes containing p —
                    // the light dual range the net missed.
                    doublings_total += 1;
                    for (w, s) in weight.iter_mut().zip(shapes) {
                        if s.contains(&points[p]) {
                            *w *= 2.0;
                        }
                    }
                    // Renormalise before overflow.
                    let max = weight.iter().cloned().fold(0.0f64, f64::max);
                    if max > 1e100 {
                        for w in &mut weight {
                            *w /= max;
                        }
                    }
                }
            }
        }
        if k >= m {
            // The guess exhausted the whole family: fall back to every
            // shape once (always a cover — feasibility checked above).
            let all: Vec<u32> = (0..m as u32).collect();
            let cover = if cfg.prune {
                reverse_delete(points, shapes, all)
            } else {
                all
            };
            return Some(BgOutcome {
                cover,
                guessed_k: m,
                doublings: doublings_total,
                net_draws: net_draws_total,
            });
        }
        k = (k * 2).min(m);
    }
}

/// Reverse deletion: walk the cover once (largest-index first, matching
/// the order the net sampler emitted) and drop every shape whose points
/// are all covered by the survivors. The result is an irredundant
/// subcover — each kept shape uniquely covers some point.
fn reverse_delete(points: &[Point], shapes: &[Shape], mut cover: Vec<u32>) -> Vec<u32> {
    // coverage[i] = how many cover shapes contain point i.
    let mut coverage = vec![0u32; points.len()];
    for &id in &cover {
        for (c, p) in coverage.iter_mut().zip(points) {
            if shapes[id as usize].contains(p) {
                *c += 1;
            }
        }
    }
    let mut keep = Vec::with_capacity(cover.len());
    while let Some(id) = cover.pop() {
        let redundant = points
            .iter()
            .zip(&coverage)
            .all(|(p, &c)| c >= 2 || !shapes[id as usize].contains(p));
        if redundant {
            for (c, p) in coverage.iter_mut().zip(points) {
                if shapes[id as usize].contains(p) {
                    *c -= 1;
                }
            }
        } else {
            keep.push(id);
        }
    }
    keep.sort_unstable();
    keep
}

/// Weighted ε-net over *shapes*: the dual of
/// [`crate::epsilon_net::sample_weighted_epsilon_net`]. The dual range
/// space of a planar family has VC dimension within a constant of the
/// primal, so the primal sample bound (with the family's own `d`) is
/// used; a constant-factor undershoot only costs extra doublings, not
/// correctness.
fn weighted_shape_net(
    shapes: &[Shape],
    weights: &[f64],
    family: ShapeFamily,
    eps: f64,
    q: f64,
    rng: &mut StdRng,
) -> Vec<u32> {
    let total: f64 = weights.iter().sum();
    let mut prefix = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        acc += w;
        prefix.push(acc);
    }
    let want = net_sample_size(family, eps, q).min(shapes.len());
    let mut net: Vec<u32> = (0..want)
        .map(|_| {
            let r = rng.random_range(0.0..total);
            prefix.partition_point(|&p| p <= r).min(shapes.len() - 1) as u32
        })
        .collect();
    net.sort_unstable();
    net.dedup();
    net
}

/// First point not covered by any shape of `net`, if any.
fn uncovered_point(points: &[Point], shapes: &[Shape], net: &[u32]) -> Option<usize> {
    points
        .iter()
        .position(|p| !net.iter().any(|&id| shapes[id as usize].contains(p)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances;

    #[test]
    fn covers_all_three_families() {
        for (label, inst) in [
            ("discs", instances::random_discs(300, 150, 6, 1)),
            ("rects", instances::random_rects(300, 150, 6, 2)),
            ("triangles", instances::random_fat_triangles(300, 150, 6, 3)),
        ] {
            let out = bronnimann_goodrich(&inst.points, &inst.shapes, &BgConfig::default())
                .unwrap_or_else(|| panic!("{label}: infeasible?"));
            assert!(inst.verify_cover(&out.cover).is_ok(), "{label}");
        }
    }

    #[test]
    fn cover_size_lands_in_the_k_log_k_band() {
        let k = 6;
        let inst = instances::random_discs(400, 200, k, 5);
        let out = bronnimann_goodrich(&inst.points, &inst.shapes, &BgConfig::default()).unwrap();
        assert!(inst.verify_cover(&out.cover).is_ok());
        // ρ_g = O(d log k) with the Haussler–Welzl constants; give the
        // band generous but finite headroom.
        let bound = (40.0 * k as f64 * ((k as f64) + 2.0).ln()).ceil() as usize;
        assert!(
            out.cover.len() <= bound,
            "cover {} above the O(k log k) band {bound}",
            out.cover.len()
        );
        assert!(
            out.guessed_k <= 4 * k,
            "guessed k={} far above OPT≈{k}",
            out.guessed_k
        );
    }

    #[test]
    fn infeasible_instance_returns_none() {
        let inst = instances::random_rects(50, 20, 3, 9);
        let mut points = inst.points.clone();
        points.push(crate::point::Point::new(1e9, 1e9)); // far outside
        assert!(bronnimann_goodrich(&points, &inst.shapes, &BgConfig::default()).is_none());
    }

    #[test]
    fn empty_points_is_an_empty_cover() {
        let inst = instances::random_discs(10, 5, 2, 1);
        let out = bronnimann_goodrich(&[], &inst.shapes, &BgConfig::default()).unwrap();
        assert!(out.cover.is_empty());
    }

    #[test]
    fn pruning_shrinks_covers_without_breaking_them() {
        let inst = instances::random_discs(300, 150, 5, 21);
        let pruned = bronnimann_goodrich(&inst.points, &inst.shapes, &BgConfig::default()).unwrap();
        let raw = bronnimann_goodrich(
            &inst.points,
            &inst.shapes,
            &BgConfig {
                prune: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(inst.verify_cover(&pruned.cover).is_ok());
        assert!(inst.verify_cover(&raw.cover).is_ok());
        assert!(
            pruned.cover.len() <= raw.cover.len(),
            "pruned {} > raw {}",
            pruned.cover.len(),
            raw.cover.len()
        );
        // The pruned cover is irredundant: dropping any one set breaks it.
        for drop in 0..pruned.cover.len() {
            let sub: Vec<u32> = pruned
                .cover
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop)
                .map(|(_, &id)| id)
                .collect();
            assert!(inst.verify_cover(&sub).is_err(), "set {drop} was redundant");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = instances::random_rects(200, 100, 5, 13);
        let a = bronnimann_goodrich(&inst.points, &inst.shapes, &BgConfig::default()).unwrap();
        let b = bronnimann_goodrich(&inst.points, &inst.shapes, &BgConfig::default()).unwrap();
        assert_eq!(a.cover, b.cover);
        assert_eq!(a.doublings, b.doublings);
    }

    #[test]
    fn two_line_adversary_is_covered() {
        // The Figure 1.2 family: m = n²/4 two-point rectangles. OPT is
        // n/2 (one per top point paired across), so k doubles up to
        // ~n/2; the run must still terminate and cover.
        let inst = instances::two_line(8, None, 3);
        let out = bronnimann_goodrich(&inst.points, &inst.shapes, &BgConfig::default()).unwrap();
        assert!(inst.verify_cover(&out.cover).is_ok());
    }
}
