//! Geometric set cover in the streaming model (Section 4 of the paper).
//!
//! Elements are points in the plane; sets are **discs**, **axis-parallel
//! rectangles**, or **α-fat triangles** arriving in a stream. Each shape
//! has an `O(1)` description, so the whole instance fits in `O(m + n)`
//! words — the challenge the paper sets is to do *sublinear in `m`*:
//! `Õ(n)` space, `O(1)` passes, `O(ρ)` approximation (Theorem 4.6).
//!
//! The obstruction is that a family of shapes can have quadratically
//! many distinct *shallow* projections onto the point set — the
//! Figure 1.2 construction ([`instances::two_line`]) exhibits `n²/4`
//! rectangles each containing exactly two points, so storing the
//! projections of "small" sets (the `iterSetCover` recipe) would cost
//! `Ω(n²)`. The fix is the **canonical representation** (Definition 4.1,
//! [`canonical`]): split each shallow range into canonical pieces from a
//! universe family of near-linear size, store only the distinct pieces,
//! and re-attach pieces to concrete shapes with one extra pass.
//!
//! [`AlgGeomSc`] is the full algorithm of Figure 4.1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alg_geom_sc;
mod bronnimann_goodrich;
pub mod canonical;
pub mod epsilon_net;
pub mod instances;
pub mod io;
mod point;
mod shapes;

pub use alg_geom_sc::{AlgGeomSc, AlgGeomScConfig, GeomReport};
pub use bronnimann_goodrich::{bronnimann_goodrich, BgConfig, BgOutcome};
pub use epsilon_net::{
    net_sample_size, sample_epsilon_net, sample_weighted_epsilon_net, verify_epsilon_net,
    ShapeFamily,
};
pub use instances::GeomInstance;
pub use point::Point;
pub use shapes::{Disc, Rect, Shape, Triangle};
