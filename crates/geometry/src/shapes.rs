//! The three range families of Section 4: discs, axis-parallel
//! rectangles, and α-fat triangles.

use crate::point::Point;

/// A disc given by centre and radius (boundary inclusive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Disc {
    /// Centre.
    pub center: Point,
    /// Radius, must be ≥ 0.
    pub radius: f64,
}

impl Disc {
    /// Constructs a disc.
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite radius.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(radius.is_finite() && radius >= 0.0, "bad radius {radius}");
        Self { center, radius }
    }

    /// Boundary-inclusive containment.
    pub fn contains(&self, p: &Point) -> bool {
        self.center.dist2(p) <= self.radius * self.radius
    }
}

/// An axis-parallel rectangle `[x0, x1] × [y0, y1]` (boundary inclusive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x0: f64,
    /// Bottom edge.
    pub y0: f64,
    /// Right edge.
    pub x1: f64,
    /// Top edge.
    pub y1: f64,
}

impl Rect {
    /// Constructs a rectangle.
    ///
    /// # Panics
    ///
    /// Panics unless `x0 ≤ x1` and `y0 ≤ y1`.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        assert!(
            x0 <= x1 && y0 <= y1,
            "degenerate rect ({x0},{y0})–({x1},{y1})"
        );
        Self { x0, y0, x1, y1 }
    }

    /// Boundary-inclusive containment.
    pub fn contains(&self, p: &Point) -> bool {
        self.x0 <= p.x && p.x <= self.x1 && self.y0 <= p.y && p.y <= self.y1
    }
}

/// A triangle, intended to be α-fat (Section 4.1: the ratio of the
/// longest edge to the height on that edge is at most a constant α).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// First vertex.
    pub a: Point,
    /// Second vertex.
    pub b: Point,
    /// Third vertex.
    pub c: Point,
}

impl Triangle {
    /// Constructs a triangle.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate (zero-area) triangle.
    pub fn new(a: Point, b: Point, c: Point) -> Self {
        let t = Self { a, b, c };
        assert!(t.area2() > 0.0, "degenerate triangle");
        t
    }

    /// Twice the (unsigned) area.
    pub fn area2(&self) -> f64 {
        ((self.b.x - self.a.x) * (self.c.y - self.a.y)
            - (self.c.x - self.a.x) * (self.b.y - self.a.y))
            .abs()
    }

    /// The fatness parameter α: longest edge over the height onto it.
    ///
    /// `height = 2·area / longest_edge`, so `α = longest² / (2·area)`.
    pub fn fatness(&self) -> f64 {
        let e2 = [
            self.a.dist2(&self.b),
            self.b.dist2(&self.c),
            self.c.dist2(&self.a),
        ];
        let longest2 = e2.iter().cloned().fold(0.0f64, f64::max);
        longest2 / self.area2()
    }

    /// Boundary-inclusive containment via sign tests.
    pub fn contains(&self, p: &Point) -> bool {
        let sign =
            |a: &Point, b: &Point, c: &Point| (b.x - a.x) * (c.y - a.y) - (c.x - a.x) * (b.y - a.y);
        let d1 = sign(&self.a, &self.b, p);
        let d2 = sign(&self.b, &self.c, p);
        let d3 = sign(&self.c, &self.a, p);
        let has_neg = d1 < 0.0 || d2 < 0.0 || d3 < 0.0;
        let has_pos = d1 > 0.0 || d2 > 0.0 || d3 > 0.0;
        !(has_neg && has_pos)
    }
}

/// A streamed range: one of the three families of Theorem 4.6.
///
/// Every variant has an `O(1)` description — which is why the paper
/// notes that geometric instances are trivial in `O(m + n)` space and
/// the interesting regime is `Õ(n)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// A disc.
    Disc(Disc),
    /// An axis-parallel rectangle.
    Rect(Rect),
    /// An α-fat triangle.
    Triangle(Triangle),
}

impl Shape {
    /// Boundary-inclusive containment.
    pub fn contains(&self, p: &Point) -> bool {
        match self {
            Shape::Disc(d) => d.contains(p),
            Shape::Rect(r) => r.contains(p),
            Shape::Triangle(t) => t.contains(p),
        }
    }

    /// `true` for the rectangle variant (which canonical decomposition
    /// treats specially).
    pub fn is_rect(&self) -> bool {
        matches!(self, Shape::Rect(_))
    }

    /// The rectangle, if this shape is one.
    pub fn as_rect(&self) -> Option<&Rect> {
        match self {
            Shape::Rect(r) => Some(r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disc_containment_boundary_inclusive() {
        let d = Disc::new(Point::new(0.0, 0.0), 5.0);
        assert!(d.contains(&Point::new(3.0, 4.0)), "on the boundary");
        assert!(d.contains(&Point::new(0.0, 0.0)));
        assert!(!d.contains(&Point::new(3.1, 4.0)));
    }

    #[test]
    fn rect_containment() {
        let r = Rect::new(0.0, 0.0, 2.0, 1.0);
        assert!(r.contains(&Point::new(0.0, 0.0)));
        assert!(r.contains(&Point::new(2.0, 1.0)));
        assert!(!r.contains(&Point::new(2.0, 1.0001)));
        assert!(!r.contains(&Point::new(-0.1, 0.5)));
    }

    #[test]
    fn triangle_containment_any_orientation() {
        // Clockwise and counter-clockwise vertex orders must agree.
        let ccw = Triangle::new(
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(2.0, 3.0),
        );
        let cw = Triangle::new(
            Point::new(0.0, 0.0),
            Point::new(2.0, 3.0),
            Point::new(4.0, 0.0),
        );
        let inside = Point::new(2.0, 1.0);
        let outside = Point::new(0.0, 3.0);
        let vertex = Point::new(4.0, 0.0);
        for t in [ccw, cw] {
            assert!(t.contains(&inside));
            assert!(!t.contains(&outside));
            assert!(t.contains(&vertex), "vertices are inside");
        }
    }

    #[test]
    fn equilateral_is_fat_sliver_is_not() {
        let eq = Triangle::new(
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 0.866),
        );
        assert!(eq.fatness() < 1.2, "equilateral α ≈ 1.155");
        let sliver = Triangle::new(
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 0.01),
        );
        assert!(sliver.fatness() > 100.0);
    }

    #[test]
    #[should_panic(expected = "degenerate triangle")]
    fn collinear_vertices_rejected() {
        Triangle::new(
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        );
    }

    #[test]
    fn shape_dispatch() {
        let s = Shape::Rect(Rect::new(0.0, 0.0, 1.0, 1.0));
        assert!(s.contains(&Point::new(0.5, 0.5)));
        assert!(s.is_rect());
        assert!(s.as_rect().is_some());
        let d = Shape::Disc(Disc::new(Point::new(0.0, 0.0), 1.0));
        assert!(!d.is_rect());
        assert!(d.as_rect().is_none());
    }
}
