//! `algRecoverBit` (Figure 3.1): decoding Alice's family from
//! disjointness answers.
//!
//! The engine of Theorem 3.2. Bob repeatedly probes with a random query
//! `r_b` of `Θ(log m)` elements. When the oracle says some Alice set is
//! disjoint from `r_b` — with high probability exactly *one* is
//! (Lemma 3.3) — Bob pins it down element by element: `e` belongs to
//! every `r_b`-disjoint set iff `existsDisj(r_b ∪ {e})` flips to false.
//!
//! When more than one Alice set happens to be disjoint from `r_b`, the
//! probe recovers the *intersection* of those sets (for every `e`, the
//! answer flips iff all disjoint sets contain `e`) — a strict subset of
//! each true set. Because a random family is intersecting w.h.p.
//! (Observation 3.4: no containments), such artifacts are cleaned up by
//! keeping only inclusion-**maximal** candidates: every true set
//! eventually arrives via a solo probe and displaces its artifacts, and
//! no artifact can displace a true set. (Figure 3.1's pseudo-code reads
//! "union" and keeps minimal candidates; as stated that would let
//! artifacts displace true sets, so we implement the direction the
//! surrounding analysis needs.)

use crate::disjointness::{AliceInput, DisjointnessOracle};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sc_bitset::BitSet;

/// Tunables of the recovery experiment.
#[derive(Debug, Clone, Copy)]
pub struct RecoverConfig {
    /// Query size multiplier: `|r_b| = ⌈c₁·log₂ m⌉` (the paper's `c₁`).
    pub c1: f64,
    /// Hard cap on probe rounds (the paper's `m^c`); recovery normally
    /// stops far earlier, when `m` candidates are stable.
    pub max_probes: usize,
    /// RNG seed for the probe sequence.
    pub seed: u64,
}

impl Default for RecoverConfig {
    fn default() -> Self {
        Self {
            c1: 1.0,
            max_probes: 1_000_000,
            seed: 0,
        }
    }
}

/// What one recovery run measured.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// Candidates held when the run stopped.
    pub recovered: Vec<BitSet>,
    /// Random probes issued (outer loop rounds).
    pub probes: usize,
    /// Probes for which the oracle reported a disjoint set.
    pub useful_probes: usize,
    /// Probes that were disjoint from two or more Alice sets (the
    /// Lemma 3.3 collision events).
    pub collision_probes: usize,
    /// Total oracle queries, including the per-element pin-down loops.
    pub oracle_queries: usize,
    /// `true` iff the recovered candidates equal Alice's family exactly
    /// (as a multiset of sets; order-insensitive).
    pub exact: bool,
}

impl RecoveryOutcome {
    /// Bits of information the decoder extracted — the `mn` of
    /// Theorem 3.2 when recovery is exact.
    pub fn decoded_bits(&self, alice: &AliceInput) -> usize {
        if self.exact {
            alice.description_bits()
        } else {
            0
        }
    }
}

/// Runs `algRecoverBit` against an exact disjointness oracle.
///
/// Stops as soon as every Alice set has been recovered (checked against
/// ground truth — the experiment knows the answer key; the *decoder*
/// itself only sees oracle answers and the candidate pool) or when the
/// probe budget runs out.
pub fn recover(alice: &AliceInput, cfg: &RecoverConfig) -> RecoveryOutcome {
    let n = alice.universe();
    let m = alice.num_sets();
    let oracle = DisjointnessOracle::new(alice);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let query_size = ((cfg.c1 * (m.max(2) as f64).log2()).ceil() as usize).clamp(1, n);

    let mut candidates: Vec<BitSet> = Vec::new();
    let mut probes = 0usize;
    let mut useful = 0usize;
    let mut collisions = 0usize;
    let mut all_ids: Vec<u32> = (0..n as u32).collect();

    while probes < cfg.max_probes {
        if family_matches(&candidates, alice) {
            break;
        }
        probes += 1;
        all_ids.shuffle(&mut rng);
        let rb = BitSet::from_iter(n, all_ids[..query_size].iter().copied());
        if !oracle.exists_disjoint(&rb) {
            continue;
        }
        useful += 1;
        if oracle.disjoint_count(&rb) >= 2 {
            collisions += 1;
        }

        // Pin down the (w.h.p. unique) disjoint set: e is in every
        // rb-disjoint set iff adding e to rb kills disjointness.
        let mut r = BitSet::new(n);
        for e in 0..n as u32 {
            if rb.contains(e) {
                continue;
            }
            let mut probe = rb.clone();
            probe.insert(e);
            if !oracle.exists_disjoint(&probe) {
                r.insert(e);
            }
        }

        // Keep inclusion-maximal candidates (see module docs).
        if candidates.iter().any(|c| r.is_subset(c)) {
            continue; // r is an artifact of (or equal to) a known set
        }
        candidates.retain(|c| !c.is_subset(&r));
        candidates.push(r);
    }

    let exact = family_matches(&candidates, alice);
    RecoveryOutcome {
        recovered: candidates,
        probes,
        useful_probes: useful,
        collision_probes: collisions,
        oracle_queries: oracle.queries(),
        exact,
    }
}

/// Order-insensitive family equality.
fn family_matches(candidates: &[BitSet], alice: &AliceInput) -> bool {
    if candidates.len() != alice.num_sets() {
        return false;
    }
    let mut want: Vec<Vec<u32>> = alice.sets().iter().map(BitSet::to_vec).collect();
    let mut got: Vec<Vec<u32>> = candidates.iter().map(BitSet::to_vec).collect();
    want.sort();
    got.sort();
    want == got
}

/// The Lemma 3.3 quantity, measured: over `trials` random queries of
/// size `⌈c₁·log₂ m⌉`, how often is the query disjoint from exactly one
/// Alice set / from two or more?
pub fn probe_statistics(alice: &AliceInput, c1: f64, trials: usize, seed: u64) -> ProbeStats {
    let n = alice.universe();
    let m = alice.num_sets();
    let oracle = DisjointnessOracle::new(alice);
    let mut rng = StdRng::seed_from_u64(seed);
    let query_size = ((c1 * (m.max(2) as f64).log2()).ceil() as usize).clamp(1, n);
    let mut all_ids: Vec<u32> = (0..n as u32).collect();

    let mut exactly_one = 0usize;
    let mut two_or_more = 0usize;
    for _ in 0..trials {
        all_ids.shuffle(&mut rng);
        let rb = BitSet::from_iter(n, all_ids[..query_size].iter().copied());
        match oracle.disjoint_count(&rb) {
            0 => {}
            1 => exactly_one += 1,
            _ => two_or_more += 1,
        }
    }
    ProbeStats {
        trials,
        exactly_one,
        two_or_more,
        query_size,
    }
}

/// Outcome of [`probe_statistics`].
#[derive(Debug, Clone, Copy)]
pub struct ProbeStats {
    /// Queries drawn.
    pub trials: usize,
    /// Queries disjoint from exactly one Alice set.
    pub exactly_one: usize,
    /// Queries disjoint from two or more (Lemma 3.3 collisions).
    pub two_or_more: usize,
    /// Elements per query.
    pub query_size: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_random_family_exactly() {
        for seed in 0..5 {
            let alice = AliceInput::random(48, 8, seed);
            let out = recover(
                &alice,
                &RecoverConfig {
                    seed,
                    ..Default::default()
                },
            );
            assert!(out.exact, "seed {seed}: {} candidates", out.recovered.len());
            assert_eq!(out.decoded_bits(&alice), 48 * 8);
            assert!(out.oracle_queries > 0);
        }
    }

    #[test]
    fn probe_budget_limits_work() {
        let alice = AliceInput::random(48, 8, 3);
        let out = recover(
            &alice,
            &RecoverConfig {
                max_probes: 2,
                ..Default::default()
            },
        );
        assert_eq!(out.probes, 2);
        assert!(!out.exact, "2 probes cannot recover 8 sets");
    }

    #[test]
    fn exactly_one_dominates_collisions() {
        // Lemma 3.3's regime needs c₁ > 1: with |r_b| = 2·log₂ m the
        // per-set disjointness probability is q = m^{-2}, so
        // P(exactly one) ≈ m·q = 1/m dwarfs P(≥2) ≈ m²q²/2 = 1/(2m²).
        let alice = AliceInput::random(64, 16, 11);
        let stats = probe_statistics(&alice, 2.0, 4000, 5);
        assert!(stats.exactly_one > 0);
        assert!(
            stats.exactly_one > 4 * stats.two_or_more,
            "one={} vs many={}",
            stats.exactly_one,
            stats.two_or_more
        );
    }

    #[test]
    fn handles_tiny_families() {
        let n = 16;
        let alice = AliceInput::new(
            n,
            vec![
                BitSet::from_iter(n, [0, 1, 2]),
                BitSet::from_iter(n, [3, 4]),
            ],
        );
        let out = recover(&alice, &RecoverConfig::default());
        assert!(out.exact);
    }

    #[test]
    fn recovery_is_deterministic_in_seed() {
        let alice = AliceInput::random(32, 6, 2);
        let a = recover(
            &alice,
            &RecoverConfig {
                seed: 9,
                ..Default::default()
            },
        );
        let b = recover(
            &alice,
            &RecoverConfig {
                seed: 9,
                ..Default::default()
            },
        );
        assert_eq!(a.probes, b.probes);
        assert_eq!(a.oracle_queries, b.oracle_queries);
    }
}
