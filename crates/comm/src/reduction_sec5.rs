//! The Section 5 reduction: Intersection Set Chasing → Set Cover
//! (Figures 5.2–5.4, Lemmas 5.5–5.7, Corollary 5.8).
//!
//! Given an ISC instance with `2p` players over `[n]`, the reduction
//! builds a Set Cover instance with `|U| = (2p+1)·2n + 2p` elements and
//! `(4p+1)·n` sets such that
//!
//! > **Corollary 5.8.** The ISC output is 1 **iff** the optimal cover
//! > has size exactly `(2p+1)·n + 1` (and `(2p+1)·n + 2` otherwise).
//!
//! Layout (paper indices; code is 0-based with start vertex 0):
//!
//! * Every vertex `v^j_i` (left), `u^j_i` (right) carries two elements
//!   `in(·)`/`out(·)`; the two instances share column 1 (the merged
//!   vertices of Figure 5.3), whose two elements per vertex are the
//!   *left arrival* (covered by left player-1 sets) and *right arrival*
//!   (covered by right player-`p+1` sets).
//! * `S^j_i` (left player `i`): `{out(v^j_{i+1})} ∪ {in(v^ℓ_i) : ℓ ∈
//!   f_i(j)}`, plus `e_i`. Following Lemma 5.5, `e_p` appears **only**
//!   in `S^1_p` — this anchors the left chase at its start vertex.
//! * `R^j_i` (left columns `2..p+1`): `{in(v^j_i), out(v^j_i)}`.
//! * `T^j_1` (shared column): both arrival elements of vertex `j`.
//! * `S^j_{p+i}` (right player `p+i`): `{in(u^j_i)} ∪ {out(u^ℓ_{i+1}) :
//!   j ∈ f'_i(ℓ)}`, plus `e_{p+i}`.
//! * `T^j_i` (right columns `2..p+1`): `{in(u^j_i), out(u^j_i)}` —
//!   except `T^1_{p+1} = {in(u^1_{p+1})}`: the paper's remark that "the
//!   way we constructed the instance guarantees" every selected
//!   last-player set reaches `out(u^1_{p+1})` is realised by *removing*
//!   `out(u^1_{p+1})` from its `T` set, so covering it forces a
//!   right-player-`2p` set with `j ∈ f'_p(1)` — anchoring the right
//!   chase at its start vertex. (Lemma 5.7's induction needs exactly
//!   this hook; the paper's prose leaves the mechanism implicit.)

use crate::chasing::IntersectionSetChasing;
use sc_bitset::BitSet;
use sc_offline::exact;
use sc_setsystem::{ElemId, SetId, SetSystem, SetSystemBuilder};

/// Which gadget a set of the reduced instance implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetKind {
    /// `S^j_i`, left player `i ∈ 1..=p`, source vertex `j`.
    LeftS {
        /// Player index (1-based).
        player: usize,
        /// Source vertex (0-based).
        j: u32,
    },
    /// `R^j_col`, left column `col ∈ 2..=p+1`, vertex `j`.
    LeftR {
        /// Column (1-based; 2..=p+1).
        col: usize,
        /// Vertex (0-based).
        j: u32,
    },
    /// `T^j_1`, merged shared column, vertex `j`.
    SharedT {
        /// Vertex (0-based).
        j: u32,
    },
    /// `T^j_col`, right column `col ∈ 2..=p+1`, vertex `j`.
    RightT {
        /// Column (1-based; 2..=p+1).
        col: usize,
        /// Vertex (0-based).
        j: u32,
    },
    /// `S^j_{p+i}`, right player `p+i`, target vertex `j`.
    RightS {
        /// Right player offset `i ∈ 1..=p` (the paper's player `p+i`).
        i: usize,
        /// Target vertex (0-based).
        j: u32,
    },
}

/// Element-id layout of the reduced instance.
#[derive(Debug, Clone, Copy)]
struct Layout {
    n: usize,
    p: usize,
}

impl Layout {
    fn left_arrival(&self, j: u32) -> ElemId {
        j
    }
    fn right_arrival(&self, j: u32) -> ElemId {
        (self.n as u32) + j
    }
    fn in_left(&self, col: usize, j: u32) -> ElemId {
        debug_assert!((2..=self.p + 1).contains(&col));
        (2 * self.n + (col - 2) * 2 * self.n) as u32 + 2 * j
    }
    fn out_left(&self, col: usize, j: u32) -> ElemId {
        self.in_left(col, j) + 1
    }
    fn in_right(&self, col: usize, j: u32) -> ElemId {
        debug_assert!((2..=self.p + 1).contains(&col));
        (2 * self.n + self.p * 2 * self.n + (col - 2) * 2 * self.n) as u32 + 2 * j
    }
    fn out_right(&self, col: usize, j: u32) -> ElemId {
        self.in_right(col, j) + 1
    }
    fn e(&self, player: usize) -> ElemId {
        debug_assert!((1..=2 * self.p).contains(&player));
        (2 * self.n * (2 * self.p + 1) + player - 1) as u32
    }
    fn universe(&self) -> usize {
        2 * self.n * (2 * self.p + 1) + 2 * self.p
    }
}

/// The reduced Set Cover instance with its gadget metadata.
#[derive(Debug, Clone)]
pub struct Sec5Reduction {
    /// The Set Cover instance.
    pub system: SetSystem,
    /// Gadget kind of each set, aligned with set ids.
    pub kinds: Vec<SetKind>,
    /// ISC domain size `n`.
    pub n: usize,
    /// Players per side `p`.
    pub p: usize,
}

impl Sec5Reduction {
    /// The Corollary 5.8 threshold `(2p+1)·n + 1`.
    pub fn yes_cover_size(&self) -> usize {
        (2 * self.p + 1) * self.n + 1
    }
}

/// Builds the reduced instance from an ISC instance.
pub fn reduce(isc: &IntersectionSetChasing) -> Sec5Reduction {
    let n = isc.n();
    let p = isc.p();
    let layout = Layout { n, p };
    let mut b = SetSystemBuilder::with_capacity(layout.universe(), (4 * p + 1) * n);
    let mut kinds = Vec::with_capacity((4 * p + 1) * n);

    // Left S^j_i: out(v^j_{i+1}) plus the ins of f_i(j)'s targets at
    // column i, plus e_i (only for j = 0 when i = p — the start anchor).
    for i in 1..=p {
        let f = isc.left.f(i);
        for j in 0..n as u32 {
            let mut elems = Vec::new();
            if i == p {
                // Column p+1 is the leftmost real column.
                elems.push(layout.out_left(p + 1, j));
                if j == 0 {
                    elems.push(layout.e(p));
                }
            } else {
                elems.push(layout.out_left(i + 1, j));
                elems.push(layout.e(i));
            }
            for &t in f.targets(j) {
                elems.push(if i == 1 {
                    layout.left_arrival(t)
                } else {
                    layout.in_left(i, t)
                });
            }
            b.add_set(elems);
            kinds.push(SetKind::LeftS { player: i, j });
        }
    }

    // Left R^j_col for columns 2..=p+1.
    for col in 2..=p + 1 {
        for j in 0..n as u32 {
            b.add_set(vec![layout.in_left(col, j), layout.out_left(col, j)]);
            kinds.push(SetKind::LeftR { col, j });
        }
    }

    // Shared T^j_1: both arrival elements.
    for j in 0..n as u32 {
        b.add_set(vec![layout.left_arrival(j), layout.right_arrival(j)]);
        kinds.push(SetKind::SharedT { j });
    }

    // Right T^j_col for columns 2..=p+1; the start vertex's T at the top
    // column deliberately omits its out-element (the right anchor).
    for col in 2..=p + 1 {
        for j in 0..n as u32 {
            let elems = if col == p + 1 && j == 0 {
                vec![layout.in_right(col, j)]
            } else {
                vec![layout.in_right(col, j), layout.out_right(col, j)]
            };
            b.add_set(elems);
            kinds.push(SetKind::RightT { col, j });
        }
    }

    // Right S^j_{p+i}: in(u^j_i) plus out(u^ℓ_{i+1}) for incoming edges,
    // plus e_{p+i}.
    for i in 1..=p {
        let inv = isc.right.f(i).inverse();
        for j in 0..n as u32 {
            let mut elems = vec![layout.e(p + i)];
            elems.push(if i == 1 {
                layout.right_arrival(j)
            } else {
                layout.in_right(i, j)
            });
            for &src in &inv[j as usize] {
                elems.push(layout.out_right(i + 1, src));
            }
            b.add_set(elems);
            kinds.push(SetKind::RightS { i, j });
        }
    }

    Sec5Reduction {
        system: b.finish(),
        kinds,
        n,
        p,
    }
}

/// Outcome of verifying Corollary 5.8 on one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cor58Verdict {
    /// ISC ground truth (chase outputs intersect).
    pub isc_output: bool,
    /// Certified optimal cover size of the reduced instance.
    pub opt: usize,
    /// `(2p+1)·n + 1`.
    pub yes_size: usize,
    /// `opt == yes_size ⟺ isc_output`, with the NO case landing on
    /// `yes_size + 1` exactly.
    pub holds: bool,
}

/// Exact-solves the reduced instance and checks Corollary 5.8.
///
/// # Panics
///
/// Panics if the exact solver's budget is exhausted (raise it) or the
/// reduced instance is infeasible (cannot happen for well-formed ISC).
pub fn verify_corollary_5_8(isc: &IntersectionSetChasing, node_budget: u64) -> Cor58Verdict {
    let red = reduce(isc);
    let sets = red.system.all_bitsets();
    let target = BitSet::full(red.system.universe());
    let outcome = exact(&sets, &target, node_budget).expect("reduced instance is coverable");
    assert!(
        outcome.optimal,
        "exact solver budget too small for certification"
    );
    let yes_size = red.yes_cover_size();
    let isc_output = isc.output();
    let opt = outcome.cover.len();
    let holds = if isc_output {
        opt == yes_size
    } else {
        opt == yes_size + 1
    };
    Cor58Verdict {
        isc_output,
        opt,
        yes_size,
        holds,
    }
}

/// Observation 5.9 as arithmetic: an `ℓ`-pass, `s`-word streaming
/// algorithm yields an `ℓ`-round communication protocol using
/// `O(s·ℓ²)` words = `64·s·ℓ²` bits (each of the `2p` players forwards
/// the working memory once per pass).
pub fn streaming_to_communication_bits(space_words: usize, passes: usize) -> usize {
    64 * space_words * passes * passes
}

/// Builds the explicit Lemma 5.6 witness cover for a YES instance (used
/// by tests and the benchmark to cross-check the exact solver): the
/// sets along an intersecting pair of chase paths.
///
/// Returns `None` if the ISC output is 0.
pub fn lemma_5_6_witness(isc: &IntersectionSetChasing) -> Option<Vec<SetId>> {
    let n = isc.n();
    let p = isc.p();
    if !isc.output() {
        return None;
    }
    // Find an intersecting pair of paths by BFS-style backtracking:
    // reconstruct left path v^1_{p+1} → … → v^{j_1}_1 and right path
    // u^1_{p+1} → … → u^{ℓ_1}_1 with j_1 = ℓ_1.
    let meet = {
        let l = isc.left.solve();
        let mut l2 = l.clone();
        l2.intersect_with(&isc.right.solve());
        l2.first().expect("output is 1")
    };
    let left_path = chase_path(&isc.left, meet)?;
    let right_path = chase_path(&isc.right, meet)?;

    let red = reduce(isc);
    let mut picks: Vec<SetId> = Vec::new();
    let kind_id = |kind: SetKind| -> SetId {
        red.kinds
            .iter()
            .position(|&k| k == kind)
            .expect("gadget set exists") as SetId
    };

    // Bullet 1: S^1_p and all R^j_{p+1}.
    picks.push(kind_id(SetKind::LeftS { player: p, j: 0 }));
    for j in 0..n as u32 {
        picks.push(kind_id(SetKind::LeftR { col: p + 1, j }));
    }
    // Bullet 2: for left columns i ∈ 2..=p (path vertex j_i): S^{j_i}_{i-1}
    // plus R^j_i for j ≠ j_i.
    for i in 2..=p {
        let ji = left_path[i - 1]; // path[c-1] = vertex at column c
        picks.push(kind_id(SetKind::LeftS {
            player: i - 1,
            j: ji,
        }));
        for j in 0..n as u32 {
            if j != ji {
                picks.push(kind_id(SetKind::LeftR { col: i, j }));
            }
        }
    }
    // Bullet 3: S^{j_1}_{p+1} and T^j_1 for j ≠ j_1.
    let j1 = left_path[0];
    debug_assert_eq!(j1, meet);
    picks.push(kind_id(SetKind::RightS { i: 1, j: j1 }));
    for j in 0..n as u32 {
        if j != j1 {
            picks.push(kind_id(SetKind::SharedT { j }));
        }
    }
    // Bullet 4: right columns i ∈ 2..=p: S^{ℓ_i}_{p+i} and T^ℓ_i, ℓ ≠ ℓ_i.
    for i in 2..=p {
        let li = right_path[i - 1];
        picks.push(kind_id(SetKind::RightS { i, j: li }));
        for l in 0..n as u32 {
            if l != li {
                picks.push(kind_id(SetKind::RightT { col: i, j: l }));
            }
        }
    }
    // Bullet 5: all T^j_{p+1}.
    for j in 0..n as u32 {
        picks.push(kind_id(SetKind::RightT { col: p + 1, j }));
    }
    Some(picks)
}

/// A path start → … → `target` through the chase: returns vertex per
/// column 1..=p (index c-1 = column c); column p+1 is the start (0).
fn chase_path(sc: &crate::chasing::SetChasing, target: u32) -> Option<Vec<u32>> {
    let n = sc.n();
    let p = sc.p();
    // reach[c] = set of vertices reachable at column c (1-based),
    // starting from {0} at column p+1.
    let mut reach: Vec<BitSet> = vec![BitSet::new(n); p + 2];
    reach[p + 1] = BitSet::from_iter(n, [0u32]);
    for c in (1..=p).rev() {
        reach[c] = sc.f(c).image(&reach[c + 1]);
    }
    if !reach[1].contains(target) {
        return None;
    }
    // Walk back up choosing any predecessor.
    let mut path = vec![0u32; p]; // path[c-1] = vertex at column c
    path[0] = target;
    for c in 1..p {
        // Find a vertex at column c+1, reachable, with an edge to path[c-1].
        let cur = path[c - 1];
        let inv = sc.f(c).inverse();
        let pred = inv[cur as usize]
            .iter()
            .copied()
            .find(|&j| reach[c + 1].contains(j))?;
        path[c] = pred;
    }
    // Consistency: the top of the path must be fed by the start.
    let top = path[p - 1];
    if !sc.f(p).targets(0).contains(&top) {
        // path[p-1] is at column p and must be a target of f_p(start).
        return None;
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chasing::{SetChasing, SetFunction};

    const BUDGET: u64 = 20_000_000;

    fn yes_instance() -> IntersectionSetChasing {
        // n = 3, p = 2. Left: start 0 → f2(0) = {1} → f1(1) = {2}.
        // Right: 0 → f'2(0) = {0} → f'1(0) = {2}. Outputs {2} ∩ {2} ≠ ∅.
        let left = SetChasing::new(vec![
            SetFunction::new(vec![vec![0], vec![2], vec![1]]),
            SetFunction::new(vec![vec![1], vec![0], vec![0]]),
        ]);
        let right = SetChasing::new(vec![
            SetFunction::new(vec![vec![2], vec![0], vec![1]]),
            SetFunction::new(vec![vec![0], vec![1], vec![2]]),
        ]);
        IntersectionSetChasing::new(left, right)
    }

    fn no_instance() -> IntersectionSetChasing {
        // Same left; right ends at {1} instead.
        let left = SetChasing::new(vec![
            SetFunction::new(vec![vec![0], vec![2], vec![1]]),
            SetFunction::new(vec![vec![1], vec![0], vec![0]]),
        ]);
        let right = SetChasing::new(vec![
            SetFunction::new(vec![vec![1], vec![0], vec![0]]),
            SetFunction::new(vec![vec![0], vec![1], vec![2]]),
        ]);
        IntersectionSetChasing::new(left, right)
    }

    #[test]
    fn shapes_match_the_paper() {
        let isc = yes_instance();
        let red = reduce(&isc);
        let (n, p) = (3, 2);
        assert_eq!(red.system.universe(), 2 * n * (2 * p + 1) + 2 * p);
        assert_eq!(red.system.num_sets(), (4 * p + 1) * n);
        assert_eq!(red.yes_cover_size(), (2 * p + 1) * n + 1);
    }

    #[test]
    fn yes_instance_has_opt_exactly_threshold() {
        let isc = yes_instance();
        assert!(isc.output());
        let v = verify_corollary_5_8(&isc, BUDGET);
        assert!(v.holds, "{v:?}");
        assert_eq!(v.opt, v.yes_size);
    }

    #[test]
    fn no_instance_has_opt_threshold_plus_one() {
        let isc = no_instance();
        assert!(!isc.output());
        let v = verify_corollary_5_8(&isc, BUDGET);
        assert!(v.holds, "{v:?}");
        assert_eq!(v.opt, v.yes_size + 1);
    }

    #[test]
    fn witness_cover_matches_lemma_5_6() {
        let isc = yes_instance();
        let red = reduce(&isc);
        let witness = lemma_5_6_witness(&isc).expect("YES instance");
        assert_eq!(witness.len(), red.yes_cover_size());
        assert!(
            red.system.verify_cover(&witness).is_ok(),
            "witness must be feasible"
        );
    }

    #[test]
    fn corollary_holds_on_random_instances() {
        let mut yes = 0;
        let mut no = 0;
        for seed in 0..12 {
            let isc = IntersectionSetChasing::random(4, 2, 2, seed);
            let v = verify_corollary_5_8(&isc, BUDGET);
            assert!(v.holds, "seed {seed}: {v:?}");
            if v.isc_output {
                yes += 1;
            } else {
                no += 1;
            }
        }
        assert!(yes > 0, "need at least one YES instance for coverage");
        assert!(no > 0, "need at least one NO instance for coverage");
    }

    #[test]
    fn single_player_pair_works() {
        for seed in 0..6 {
            let isc = IntersectionSetChasing::random(4, 1, 2, seed);
            let v = verify_corollary_5_8(&isc, BUDGET);
            assert!(v.holds, "seed {seed}: {v:?}");
        }
    }

    #[test]
    fn communication_cost_arithmetic() {
        assert_eq!(streaming_to_communication_bits(10, 3), 64 * 10 * 9);
    }
}
