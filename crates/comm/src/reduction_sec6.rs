//! The Section 6 sparse lower bound: OR_t of Equal Limited Pointer
//! Chasing, overlaid into Intersection Set Chasing, reduced to a
//! *sparse* Set Cover instance (Theorem 6.6, Lemmas 6.4–6.5).
//!
//! The overlay (the paper's footnote 5): `t` independent Equal Pointer
//! Chasing instances are stacked onto one ISC instance by conjugating
//! each instance's functions with fresh random permutations per column —
//! `F_i(a) = ⋃_j π_{i,j}(f_{i,j}(π⁻¹_{i+1,j}(a)))` — with two
//! constraints that make the overlay meaningful: the permutations at the
//! junction column are shared between the two sides (so equal endpoints
//! collide), and the permutations at the start column fix the start
//! vertex (so one chase simulates all `t` instances at once).
//!
//! If no constituent function is `r`-non-injective, every overlaid
//! function has in-degree less than `t·r` at every vertex, so the
//! Section 5 reduction of the overlaid ISC has only *sparse* sets —
//! `s ≤ t·(r-1) + 2` — which is how Theorem 6.6 gets Ω̃(ms) for
//! `s ≤ n^δ`.

use crate::chasing::{EqualPointerChasing, IntersectionSetChasing, SetChasing, SetFunction};
use crate::reduction_sec5::{reduce, Sec5Reduction};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// OR_t of Equal Limited Pointer Chasing (Section 6).
#[derive(Debug, Clone)]
pub struct OrEqualPointerChasing {
    /// The `t` constituent instances.
    pub instances: Vec<EqualPointerChasing>,
    /// The non-injectivity promise parameter `r`.
    pub r: usize,
}

impl OrEqualPointerChasing {
    /// `t` random instances over `[n]` with `p` players per chase.
    pub fn random(n: usize, p: usize, t: usize, r: usize, seed: u64) -> Self {
        let instances = (0..t)
            .map(|j| EqualPointerChasing::random(n, p, seed.wrapping_add(j as u64 * 7919)))
            .collect();
        Self { instances, r }
    }

    /// Number of stacked instances `t`.
    pub fn t(&self) -> usize {
        self.instances.len()
    }

    /// Domain size `n`.
    pub fn n(&self) -> usize {
        self.instances[0].left.n()
    }

    /// Players per chase `p`.
    pub fn p(&self) -> usize {
        self.instances[0].left.p()
    }

    /// The OR of the *limited* outputs (Definition 6.3: an instance with
    /// an `r`-non-injective function counts as 1).
    pub fn output(&self) -> bool {
        self.instances.iter().any(|e| e.limited_output(self.r))
    }

    /// `true` iff some constituent function is `r`-non-injective (the
    /// promise-violation case Lemma 6.5 charges to the error budget).
    pub fn any_r_non_injective(&self) -> bool {
        self.instances.iter().any(|e| e.has_r_non_injective(self.r))
    }
}

/// A random permutation of `[n]` that fixes `fixed`.
fn permutation_fixing(n: usize, fixed: u32, rng: &mut StdRng) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(rng);
    // Swap `fixed` back into place.
    let at = perm.iter().position(|&v| v == fixed).expect("present");
    perm.swap(at, fixed as usize);
    perm
}

fn inverse_permutation(perm: &[u32]) -> Vec<u32> {
    let mut inv = vec![0u32; perm.len()];
    for (i, &v) in perm.iter().enumerate() {
        inv[v as usize] = i as u32;
    }
    inv
}

/// Overlays the `t` pointer-chasing pairs into one ISC instance
/// (footnote 5 of the paper).
///
/// Column convention matches [`crate::chasing`]: functions map column
/// `i+1` to column `i`; column `p+1` holds the start vertex 0; column 1
/// is the junction. Permutations: `π_{i,j}` relabels column `i` of
/// instance `j`; `π_{p+1,·}` fixes the start; `π_{1,j}` is shared
/// between left and right.
pub fn overlay_to_isc(or: &OrEqualPointerChasing, seed: u64) -> IntersectionSetChasing {
    let n = or.n();
    let p = or.p();
    let t = or.t();
    let mut rng = StdRng::seed_from_u64(seed);

    // perms_left[col-1][j] / perms_right[col-1][j] for columns 1..=p+1.
    let mut fresh = |col: usize| -> Vec<Vec<u32>> {
        (0..t)
            .map(|_| {
                if col == p + 1 {
                    permutation_fixing(n, 0, &mut rng)
                } else {
                    let mut q: Vec<u32> = (0..n as u32).collect();
                    q.shuffle(&mut rng);
                    q
                }
            })
            .collect()
    };
    let perms_left: Vec<Vec<Vec<u32>>> = (1..=p + 1).map(&mut fresh).collect();
    let perms_right: Vec<Vec<Vec<u32>>> = (1..=p + 1)
        .map(|col| {
            if col == 1 {
                perms_left[0].clone() // junction shared with the left side
            } else {
                fresh(col)
            }
        })
        .collect();
    let perms = [perms_left, perms_right];

    let build_side = |side: usize, perms: &[Vec<Vec<u32>>]| -> SetChasing {
        let fs = (1..=p)
            .map(|i| {
                let mut targets: Vec<Vec<u32>> = vec![Vec::new(); n];
                for (j, inst) in or.instances.iter().enumerate().take(t) {
                    let f = if side == 0 {
                        inst.left.f(i)
                    } else {
                        inst.right.f(i)
                    };
                    let pi_i = &perms[i - 1][j];
                    let pi_next_inv = inverse_permutation(&perms[i][j]);
                    for a in 0..n as u32 {
                        let raw = f.apply(pi_next_inv[a as usize]);
                        targets[a as usize].push(pi_i[raw as usize]);
                    }
                }
                SetFunction::new(targets)
            })
            .collect();
        SetChasing::new(fs)
    };

    let left = build_side(0, &perms[0]);
    let right = build_side(1, &perms[1]);
    IntersectionSetChasing::new(left, right)
}

/// A complete Section 6 experiment instance: the OR_t problem, its ISC
/// overlay, and the sparse Set Cover reduction.
#[derive(Debug, Clone)]
pub struct Sec6Instance {
    /// The source OR_t(Equal Limited Pointer Chasing) instance.
    pub or_instance: OrEqualPointerChasing,
    /// The overlaid ISC instance.
    pub isc: IntersectionSetChasing,
    /// The sparse Set Cover instance (Section 5 gadgets over the overlay).
    pub reduction: Sec5Reduction,
}

impl Sec6Instance {
    /// Builds the full chain for random inputs.
    pub fn random(n: usize, p: usize, t: usize, r: usize, seed: u64) -> Self {
        let or_instance = OrEqualPointerChasing::random(n, p, t, r, seed);
        let isc = overlay_to_isc(&or_instance, seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
        let reduction = reduce(&isc);
        Self {
            or_instance,
            isc,
            reduction,
        }
    }

    /// The Theorem 6.6 sparsity bound `t·(r-1) + 2` that holds whenever
    /// no constituent function is `r`-non-injective.
    pub fn sparsity_bound(&self) -> usize {
        self.or_instance.t() * (self.or_instance.r - 1) + 2
    }

    /// The actual maximum set size of the reduced instance.
    pub fn max_set_size(&self) -> usize {
        self.reduction.system.max_set_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction_sec5::verify_corollary_5_8;

    #[test]
    fn overlay_preserves_yes_instances() {
        // If any constituent EPC has equal endpoints, the overlaid ISC
        // must output 1 (the junction permutations are shared).
        let mut checked = 0;
        for seed in 0..40 {
            let or = OrEqualPointerChasing::random(16, 2, 3, 4, seed);
            let plain_or = or.instances.iter().any(|e| e.output());
            if !plain_or {
                continue;
            }
            checked += 1;
            let isc = overlay_to_isc(&or, seed ^ 0xdead);
            assert!(isc.output(), "seed {seed}: overlay lost a YES instance");
        }
        assert!(checked > 0, "no YES instances sampled");
    }

    #[test]
    fn overlay_rarely_creates_spurious_intersections() {
        // Lemma 6.5's regime: for t²·p·r^{p-1} ≪ n the overlay answers
        // match the OR answers almost always. With n = 64, t = 2, p = 2
        // spurious collisions should be rare.
        let mut disagreements = 0;
        let mut total = 0;
        for seed in 0..60 {
            let or = OrEqualPointerChasing::random(64, 2, 2, 6, seed);
            let plain_or = or.instances.iter().any(|e| e.output());
            if plain_or {
                continue; // YES instances always map to YES
            }
            total += 1;
            let isc = overlay_to_isc(&or, seed ^ 0xbeef);
            if isc.output() {
                disagreements += 1;
            }
        }
        assert!(total >= 30, "not enough NO instances");
        assert!(
            disagreements * 5 <= total,
            "{disagreements}/{total} spurious intersections — overlay broken"
        );
    }

    #[test]
    fn reduced_instance_is_sparse() {
        let mut honoured = 0;
        for seed in 0..10 {
            let inst = Sec6Instance::random(64, 2, 2, 8, seed);
            if inst.or_instance.any_r_non_injective() {
                continue; // promise violated; sparsity bound not claimed
            }
            honoured += 1;
            assert!(
                inst.max_set_size() <= inst.sparsity_bound(),
                "seed {seed}: s={} > bound={}",
                inst.max_set_size(),
                inst.sparsity_bound()
            );
        }
        assert!(
            honoured >= 5,
            "promise almost always violated — r too small"
        );
    }

    #[test]
    fn sparsity_grows_with_t_not_n() {
        let small_n = Sec6Instance::random(16, 2, 2, 4, 3);
        let big_n = Sec6Instance::random(64, 2, 2, 4, 3);
        // Same t ⇒ same bound, regardless of n.
        assert_eq!(small_n.sparsity_bound(), big_n.sparsity_bound());
    }

    #[test]
    fn corollary_5_8_applies_to_overlaid_instances() {
        // The sparse instance is still a Section 5 instance, so the
        // cover-size criterion keeps working on it.
        for seed in 0..4 {
            let or = OrEqualPointerChasing::random(4, 2, 1, 3, seed);
            let isc = overlay_to_isc(&or, seed);
            let v = verify_corollary_5_8(&isc, 20_000_000);
            assert!(v.holds, "seed {seed}: {v:?}");
        }
    }

    #[test]
    fn permutation_fixing_fixes() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let p = permutation_fixing(9, 0, &mut rng);
            assert_eq!(p[0], 0);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..9).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn inverse_permutation_roundtrips() {
        let perm = vec![2u32, 0, 3, 1];
        let inv = inverse_permutation(&perm);
        for i in 0..4u32 {
            assert_eq!(inv[perm[i as usize] as usize], i);
        }
    }
}
