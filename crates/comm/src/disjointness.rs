//! (Many vs One)-Set Disjointness (Section 3).
//!
//! Alice holds `m` subsets of a universe `U` of size `n`; Bob holds one
//! query set and must decide whether *some* Alice set is disjoint from
//! it. Theorem 3.2: any single-round protocol with error `O(m^{-c})`
//! needs `Ω(mn)` bits — proved by letting Bob *decode Alice's whole
//! input* from disjointness answers (see [`crate::recover`]).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sc_bitset::BitSet;
use std::cell::Cell;

/// Alice's input: `m` subsets of `{0, …, n-1}`.
#[derive(Debug, Clone)]
pub struct AliceInput {
    universe: usize,
    sets: Vec<BitSet>,
}

impl AliceInput {
    /// Wraps explicit sets.
    ///
    /// # Panics
    ///
    /// Panics if any set ranges over a different universe.
    pub fn new(universe: usize, sets: Vec<BitSet>) -> Self {
        for s in &sets {
            assert_eq!(s.universe(), universe, "set universe mismatch");
        }
        Self { universe, sets }
    }

    /// The hard distribution of Theorem 3.2: `m` uniformly random
    /// subsets (each element kept with probability ½).
    pub fn random(n: usize, m: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let sets = (0..m)
            .map(|_| BitSet::from_iter(n, (0..n as u32).filter(|_| rng.random_bool(0.5))))
            .collect();
        Self { universe: n, sets }
    }

    /// Universe size `n`.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of sets `m`.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// The sets themselves (ground truth for the recovery experiment).
    pub fn sets(&self) -> &[BitSet] {
        &self.sets
    }

    /// Description length of this input in bits: the `mn` that
    /// Theorem 3.2 shows any protocol must essentially transmit.
    pub fn description_bits(&self) -> usize {
        self.universe * self.sets.len()
    }

    /// `true` iff the family is *intersecting* in the paper's sense
    /// (Observation 3.4): no set contains another.
    pub fn is_intersecting_family(&self) -> bool {
        for (i, a) in self.sets.iter().enumerate() {
            for (j, b) in self.sets.iter().enumerate() {
                if i != j && a.is_subset(b) {
                    return false;
                }
            }
        }
        true
    }
}

/// The `algExistsDisj` oracle: answers "is some Alice set disjoint from
/// the query?" while counting queries.
///
/// This stands in for Bob's subroutine in the hypothetical protocol `I`
/// (DESIGN.md substitution 1): a correct protocol must produce these
/// answers, so decoding success against the oracle certifies that the
/// protocol's one-way message pins down all `mn` input bits.
#[derive(Debug)]
pub struct DisjointnessOracle<'a> {
    alice: &'a AliceInput,
    queries: Cell<usize>,
}

impl<'a> DisjointnessOracle<'a> {
    /// Wraps Alice's input.
    pub fn new(alice: &'a AliceInput) -> Self {
        Self {
            alice,
            queries: Cell::new(0),
        }
    }

    /// `true` iff some Alice set is disjoint from `query`.
    pub fn exists_disjoint(&self, query: &BitSet) -> bool {
        self.queries.set(self.queries.get() + 1);
        self.alice.sets.iter().any(|s| s.is_disjoint(query))
    }

    /// How many sets are disjoint from `query` (diagnostics for the
    /// Lemma 3.3 experiment; does **not** count as a decoder query).
    pub fn disjoint_count(&self, query: &BitSet) -> usize {
        self.alice
            .sets
            .iter()
            .filter(|s| s.is_disjoint(query))
            .count()
    }

    /// Oracle invocations so far.
    pub fn queries(&self) -> usize {
        self.queries.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_input_has_expected_shape() {
        let a = AliceInput::random(64, 8, 1);
        assert_eq!(a.universe(), 64);
        assert_eq!(a.num_sets(), 8);
        assert_eq!(a.description_bits(), 512);
        // Each random set should be near half-full.
        for s in a.sets() {
            let c = s.count();
            assert!((12..=52).contains(&c), "|set| = {c} wildly off n/2");
        }
    }

    #[test]
    fn oracle_answers_and_counts() {
        let n = 8;
        let a = AliceInput::new(
            n,
            vec![BitSet::from_iter(n, [0, 1]), BitSet::from_iter(n, [2, 3])],
        );
        let oracle = DisjointnessOracle::new(&a);
        assert!(!oracle.exists_disjoint(&BitSet::from_iter(n, [0, 2])));
        assert!(oracle.exists_disjoint(&BitSet::from_iter(n, [0, 1])));
        assert_eq!(oracle.queries(), 2);
        assert_eq!(oracle.disjoint_count(&BitSet::from_iter(n, [4])), 2);
        assert_eq!(oracle.queries(), 2, "disjoint_count is free");
    }

    #[test]
    fn random_family_is_intersecting_whp() {
        // Observation 3.4: for n ≥ c log m this holds w.h.p.; at n = 64,
        // m = 16 a failure would be astronomically unlikely.
        let a = AliceInput::random(64, 16, 7);
        assert!(a.is_intersecting_family());
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mixed_universes_rejected() {
        AliceInput::new(4, vec![BitSet::new(5)]);
    }
}
