//! Bit-counted protocol executions — the *upper bound* side of every
//! communication statement in Sections 3 and 5.
//!
//! The paper's lower bounds say protocols cannot be cheap; this module
//! runs the natural protocols and **measures what they actually cost**,
//! in real encoded bits over a [`BitBuffer`], so the benches can place
//! each measured point against its matching bound:
//!
//! * [`alice_sends_all`] — the trivial one-round protocol for two-party
//!   SetCover / (Many vs One)-Set Disjointness at `m·n` bits; Theorems
//!   3.1/3.2 prove this is optimal up to constants.
//! * [`chain_pointer_chasing`] / [`chain_set_chasing`] /
//!   [`chain_intersection_set_chasing`] — the `p`-round chain protocols
//!   at `O(p·log n)` / `O(p·n)` bits: what enough rounds buy you.
//! * [`one_round_pointer_chasing`] — the table-dump protocol that a
//!   round-starved execution is forced into, at `Θ(p·n·log n)` bits:
//!   the blow-up the \[GO13\] bound (and hence Theorem 5.4) formalises.
//!
//! Every runner returns the protocol's output, verified by the tests
//! against the instances' ground truth, plus exact bits and rounds.

use crate::chasing::{IntersectionSetChasing, PointerChasing, SetChasing};
use crate::two_party::TwoPartySetCover;
use sc_bitset::BitSet;

/// A growable bit string with fixed-width reads and writes — the wire
/// every protocol in this module serialises onto.
///
/// # Examples
///
/// ```
/// use sc_comm::protocol::BitBuffer;
///
/// let mut buf = BitBuffer::new();
/// buf.write_bits(5, 3);
/// buf.write_bits(1, 1);
/// assert_eq!(buf.len_bits(), 4);
/// let mut r = buf.reader();
/// assert_eq!(r.read_bits(3), 5);
/// assert_eq!(r.read_bits(1), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct BitBuffer {
    words: Vec<u64>,
    len_bits: usize,
}

impl BitBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `width` bits of `v` (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64, or if `v` has bits above
    /// `width`.
    pub fn write_bits(&mut self, v: u64, width: u32) {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        assert!(width == 64 || v < (1u64 << width), "value wider than width");
        let bit = self.len_bits;
        let word = bit / 64;
        let off = (bit % 64) as u32;
        if word >= self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= v << off;
        if off + width > 64 {
            self.words.push(v >> (64 - off));
        }
        self.len_bits += width as usize;
    }

    /// Total bits written.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// A cursor reading from the start.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader { buf: self, pos: 0 }
    }
}

/// Read cursor over a [`BitBuffer`].
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a BitBuffer,
    pos: usize,
}

impl BitReader<'_> {
    /// Reads the next `width` bits (LSB-first order, matching
    /// [`BitBuffer::write_bits`]).
    ///
    /// # Panics
    ///
    /// Panics on reading past the end.
    pub fn read_bits(&mut self, width: u32) -> u64 {
        assert!((1..=64).contains(&width));
        assert!(
            self.pos + width as usize <= self.buf.len_bits,
            "read past end of buffer"
        );
        let word = self.pos / 64;
        let off = (self.pos % 64) as u32;
        let mut v = self.buf.words[word] >> off;
        if off + width > 64 {
            v |= self.buf.words[word + 1] << (64 - off);
        }
        self.pos += width as usize;
        if width == 64 {
            v
        } else {
            v & ((1u64 << width) - 1)
        }
    }

    /// Bits consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }
}

/// The measured execution of a protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolRun<T> {
    /// The protocol's declared output.
    pub output: T,
    /// Exact bits placed on the wire.
    pub bits: usize,
    /// Rounds of communication.
    pub rounds: usize,
}

/// Bits to address `[n]`.
fn id_width(n: usize) -> u32 {
    (usize::BITS - n.max(2).saturating_sub(1).leading_zeros()).max(1)
}

/// The trivial one-round protocol for two-party SetCover's size-2
/// decision: Alice serialises her whole family (`m_A · n` bits), Bob
/// decodes and decides. Theorem 3.1 proves no one-round protocol beats
/// this by more than a constant factor.
pub fn alice_sends_all(inst: &TwoPartySetCover) -> ProtocolRun<bool> {
    let n = inst.universe();
    let mut wire = BitBuffer::new();
    for set in inst.alice() {
        for e in 0..n as u32 {
            wire.write_bits(u64::from(set.contains(e)), 1);
        }
    }
    // Bob's side: decode the family, then decide from his own sets.
    let mut r = wire.reader();
    let decoded: Vec<BitSet> = (0..inst.alice().len())
        .map(|_| BitSet::from_iter(n, (0..n as u32).filter(|_| r.read_bits(1) == 1)))
        .collect();
    let full = BitSet::full(n);
    let output = decoded.iter().any(|ra| {
        inst.bob().iter().any(|rb| {
            let mut u = ra.clone();
            u.union_with(rb);
            u == full
        })
    });
    ProtocolRun {
        output,
        bits: wire.len_bits(),
        rounds: 1,
    }
}

/// The `p`-round chain protocol for Pointer Chasing: player `p`
/// evaluates `f_p(0)` and sends the `⌈log n⌉`-bit value; each earlier
/// player applies their function and forwards. `(p−1)·⌈log n⌉` bits.
pub fn chain_pointer_chasing(pc: &PointerChasing) -> ProtocolRun<u32> {
    let w = id_width(pc.n());
    let mut wire = BitBuffer::new();
    let mut current = 0u32;
    let p = pc.p();
    for i in (1..=p).rev() {
        current = pc.f(i).apply(current);
        if i > 1 {
            // Hand off to the next player in the chain.
            wire.write_bits(u64::from(current), w);
            let mut r = wire.reader();
            // The receiver reads the latest message.
            for _ in 0..(p - i) {
                r.read_bits(w);
            }
            current = r.read_bits(w) as u32;
        }
    }
    ProtocolRun {
        output: current,
        bits: wire.len_bits(),
        rounds: p.saturating_sub(1),
    }
}

/// The one-round table-dump protocol for Pointer Chasing: players
/// `2, …, p` each serialise their whole function (`n·⌈log n⌉` bits);
/// player 1 decodes everything and chases locally. This is the
/// round-starved régime the \[GO13\] lower bound (and through it
/// Theorem 5.4) shows cannot be substantially improved.
pub fn one_round_pointer_chasing(pc: &PointerChasing) -> ProtocolRun<u32> {
    let n = pc.n();
    let w = id_width(n);
    let mut wire = BitBuffer::new();
    for i in 2..=pc.p() {
        for j in 0..n as u32 {
            wire.write_bits(u64::from(pc.f(i).apply(j)), w);
        }
    }
    // Player 1 decodes the tables and solves.
    let mut r = wire.reader();
    let tables: Vec<Vec<u32>> = (2..=pc.p())
        .map(|_| (0..n).map(|_| r.read_bits(w) as u32).collect())
        .collect();
    let mut current = 0u32;
    for table in tables.iter().rev() {
        current = table[current as usize];
    }
    current = pc.f(1).apply(current);
    ProtocolRun {
        output: current,
        bits: wire.len_bits(),
        rounds: 1,
    }
}

/// The `p`-round chain protocol for Set Chasing: the frontier is an
/// `n`-bit set, so the chain costs `(p−1)·n` bits.
pub fn chain_set_chasing(sc: &SetChasing) -> ProtocolRun<BitSet> {
    let n = sc.n();
    let mut wire = BitBuffer::new();
    let mut current = BitSet::from_iter(n, [0u32]);
    let p = sc.p();
    for i in (1..=p).rev() {
        current = sc.f(i).image(&current);
        if i > 1 {
            for e in 0..n as u32 {
                wire.write_bits(u64::from(current.contains(e)), 1);
            }
            let mut r = wire.reader();
            for _ in 0..(p - i) {
                for _ in 0..n {
                    r.read_bits(1);
                }
            }
            current = BitSet::from_iter(n, (0..n as u32).filter(|_| r.read_bits(1) == 1));
        }
    }
    ProtocolRun {
        output: current,
        bits: wire.len_bits(),
        rounds: p.saturating_sub(1),
    }
}

/// The `2p`-round chain protocol for Intersection Set Chasing: both
/// chains run ([`chain_set_chasing`]), then one side ships its `n`-bit
/// frontier across for the intersection test. `(2(p−1)+1)·n` bits —
/// *linear* in `n`, versus the `n^{1+Ω(1/p)}` that \[GO13\] forces on
/// any execution with fewer rounds. Theorem 5.4 turns exactly this gap
/// into the streaming pass/space trade-off.
pub fn chain_intersection_set_chasing(isc: &IntersectionSetChasing) -> ProtocolRun<bool> {
    let left = chain_set_chasing(&isc.left);
    let right = chain_set_chasing(&isc.right);
    let n = isc.n();
    // Ship the left frontier to the right side's last player.
    let mut wire = BitBuffer::new();
    for e in 0..n as u32 {
        wire.write_bits(u64::from(left.output.contains(e)), 1);
    }
    let mut r = wire.reader();
    let shipped = BitSet::from_iter(n, (0..n as u32).filter(|_| r.read_bits(1) == 1));
    let output = !shipped.is_disjoint(&right.output);
    ProtocolRun {
        output,
        bits: left.bits + right.bits + wire.len_bits(),
        rounds: left.rounds.max(right.rounds) + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bit_buffer_round_trips_mixed_widths() {
        let mut buf = BitBuffer::new();
        let values: Vec<(u64, u32)> = vec![
            (1, 1),
            (0, 1),
            (5, 3),
            (1023, 10),
            (u64::MAX, 64),
            (0x1234_5678, 33),
            (7, 3),
        ];
        for &(v, w) in &values {
            buf.write_bits(v, w);
        }
        let mut r = buf.reader();
        for &(v, w) in &values {
            assert_eq!(r.read_bits(w), v, "width {w}");
        }
        assert_eq!(r.position(), buf.len_bits());
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn bit_reader_overrun_panics() {
        let mut buf = BitBuffer::new();
        buf.write_bits(1, 1);
        let mut r = buf.reader();
        r.read_bits(2);
    }

    #[test]
    #[should_panic(expected = "value wider than width")]
    fn oversized_value_rejected() {
        BitBuffer::new().write_bits(4, 2);
    }

    #[test]
    fn id_width_is_ceil_log2() {
        assert_eq!(id_width(2), 1);
        assert_eq!(id_width(3), 2);
        assert_eq!(id_width(4), 2);
        assert_eq!(id_width(5), 3);
        assert_eq!(id_width(1024), 10);
        assert_eq!(id_width(1025), 11);
    }

    #[test]
    fn alice_sends_all_is_correct_and_costs_mn() {
        for seed in 0..20 {
            let inst = TwoPartySetCover::random(16, 5, 4, seed);
            let run = alice_sends_all(&inst);
            assert_eq!(run.output, inst.has_cross_cover_of_size_2(), "seed {seed}");
            assert_eq!(run.bits, 5 * 16);
            assert_eq!(run.rounds, 1);
        }
    }

    #[test]
    fn chain_pointer_chasing_matches_ground_truth() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let pc = PointerChasing::random(17, 4, &mut rng);
            let run = chain_pointer_chasing(&pc);
            assert_eq!(run.output, pc.solve());
            assert_eq!(run.bits, 3 * id_width(17) as usize);
            assert_eq!(run.rounds, 3);
        }
    }

    #[test]
    fn one_round_pointer_chasing_matches_but_costs_n_log_n() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let pc = PointerChasing::random(9, 3, &mut rng);
            let chain = chain_pointer_chasing(&pc);
            let dump = one_round_pointer_chasing(&pc);
            assert_eq!(dump.output, chain.output);
            assert_eq!(dump.rounds, 1);
            assert_eq!(dump.bits, 2 * 9 * id_width(9) as usize);
            assert!(
                dump.bits > chain.bits,
                "table dump must cost more than the chain"
            );
        }
    }

    #[test]
    fn chain_set_chasing_matches_ground_truth() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..15 {
            let sc = SetChasing::random(12, 3, 3, &mut rng);
            let run = chain_set_chasing(&sc);
            assert_eq!(run.output, sc.solve());
            assert_eq!(run.bits, 2 * 12);
        }
    }

    #[test]
    fn chain_isc_matches_output_and_is_linear_in_n() {
        for seed in 0..20 {
            let isc = IntersectionSetChasing::random(10, 3, 2, seed);
            let run = chain_intersection_set_chasing(&isc);
            assert_eq!(run.output, isc.output(), "seed {seed}");
            // (2(p−1)+1)·n bits exactly.
            assert_eq!(run.bits, (2 * (3 - 1) + 1) * 10);
            assert_eq!(run.rounds, 3);
        }
    }

    #[test]
    fn single_player_chains_cost_zero_bits() {
        let mut rng = StdRng::seed_from_u64(11);
        let pc = PointerChasing::random(8, 1, &mut rng);
        let run = chain_pointer_chasing(&pc);
        assert_eq!(run.output, pc.solve());
        assert_eq!((run.bits, run.rounds), (0, 0));
    }
}
