//! Pointer Chasing, Set Chasing, and Intersection Set Chasing
//! (Definitions 5.1–5.2, 6.2–6.3).
//!
//! These are the communication problems whose round lower bounds
//! (\[GO13\]) the paper transports to streaming Set Cover. Here they are
//! plain data types with exact solvers — the reductions in
//! [`crate::reduction_sec5`] and [`crate::reduction_sec6`] consume them,
//! and the benchmarks verify the reductions' iff-claims against these
//! solvers.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sc_bitset::BitSet;

/// One player's input in Set Chasing: a function `f: [n] → 2^[n]`,
/// stored as `f[j]` = sorted targets of `j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetFunction {
    targets: Vec<Vec<u32>>,
}

impl SetFunction {
    /// Wraps explicit target lists.
    ///
    /// # Panics
    ///
    /// Panics if any target is `≥ n` where `n = targets.len()`.
    pub fn new(mut targets: Vec<Vec<u32>>) -> Self {
        let n = targets.len() as u32;
        for t in &mut targets {
            t.sort_unstable();
            t.dedup();
            assert!(t.last().is_none_or(|&x| x < n), "target out of range");
        }
        Self { targets }
    }

    /// Random function with out-degrees in `[1, max_degree]`.
    pub fn random(n: usize, max_degree: usize, rng: &mut StdRng) -> Self {
        let targets = (0..n)
            .map(|_| {
                let d = rng.random_range(1..=max_degree.max(1));
                (0..d).map(|_| rng.random_range(0..n as u32)).collect()
            })
            .collect();
        Self::new(targets)
    }

    /// Domain size `n`.
    pub fn n(&self) -> usize {
        self.targets.len()
    }

    /// `f(j)` as a sorted slice.
    pub fn targets(&self, j: u32) -> &[u32] {
        &self.targets[j as usize]
    }

    /// The image of a set: `f⃗(S) = ⋃_{s ∈ S} f(s)`.
    pub fn image(&self, input: &BitSet) -> BitSet {
        let mut out = BitSet::new(self.n());
        for j in input.ones() {
            for &t in self.targets(j) {
                out.insert(t);
            }
        }
        out
    }

    /// Preimage lists: `inverse()[ℓ]` = sorted `j` with `ℓ ∈ f(j)`.
    pub fn inverse(&self) -> Vec<Vec<u32>> {
        let mut inv = vec![Vec::new(); self.n()];
        for (j, ts) in self.targets.iter().enumerate() {
            for &t in ts {
                inv[t as usize].push(j as u32);
            }
        }
        inv
    }
}

/// One Set Chasing instance: `p` players, functions `f_1, …, f_p`, and
/// the task of computing `f⃗_1(f⃗_2(⋯ f⃗_p({start}) ⋯))`.
#[derive(Debug, Clone)]
pub struct SetChasing {
    /// `fs[i]` is `f_{i+1}` in the paper's 1-based indexing.
    fs: Vec<SetFunction>,
    n: usize,
}

impl SetChasing {
    /// Wraps explicit functions (all over the same `[n]`).
    ///
    /// # Panics
    ///
    /// Panics on an empty function list or mismatched domains.
    pub fn new(fs: Vec<SetFunction>) -> Self {
        assert!(!fs.is_empty());
        let n = fs[0].n();
        assert!(fs.iter().all(|f| f.n() == n), "domain mismatch");
        Self { fs, n }
    }

    /// Random instance with out-degrees ≤ `max_degree`.
    pub fn random(n: usize, p: usize, max_degree: usize, rng: &mut StdRng) -> Self {
        Self::new(
            (0..p)
                .map(|_| SetFunction::random(n, max_degree, rng))
                .collect(),
        )
    }

    /// Domain size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of players `p`.
    pub fn p(&self) -> usize {
        self.fs.len()
    }

    /// `f_{i}` (1-based, as in the paper).
    pub fn f(&self, i: usize) -> &SetFunction {
        &self.fs[i - 1]
    }

    /// The chase output `f⃗_1(f⃗_2(⋯ f⃗_p({0}) ⋯))` (vertex 0 plays the
    /// paper's vertex 1).
    pub fn solve(&self) -> BitSet {
        let mut current = BitSet::from_iter(self.n, [0u32]);
        for f in self.fs.iter().rev() {
            current = f.image(&current);
        }
        current
    }
}

/// Intersection Set Chasing (Definition 5.2): two Set Chasing instances
/// whose outputs are tested for intersection.
#[derive(Debug, Clone)]
pub struct IntersectionSetChasing {
    /// The first `p` players' instance.
    pub left: SetChasing,
    /// The other `p` players' instance.
    pub right: SetChasing,
}

impl IntersectionSetChasing {
    /// Pairs two instances.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn new(left: SetChasing, right: SetChasing) -> Self {
        assert_eq!(left.n(), right.n(), "n mismatch");
        assert_eq!(left.p(), right.p(), "p mismatch");
        Self { left, right }
    }

    /// Random instance.
    pub fn random(n: usize, p: usize, max_degree: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let left = SetChasing::random(n, p, max_degree, &mut rng);
        let right = SetChasing::random(n, p, max_degree, &mut rng);
        Self::new(left, right)
    }

    /// Domain size `n`.
    pub fn n(&self) -> usize {
        self.left.n()
    }

    /// Players per side `p`.
    pub fn p(&self) -> usize {
        self.left.p()
    }

    /// The ISC output: 1 iff the two chase outputs intersect.
    pub fn output(&self) -> bool {
        !self.left.solve().is_disjoint(&self.right.solve())
    }
}

/// A pointer-chasing function `f: [n] → [n]` (Definition 6.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointerFunction {
    map: Vec<u32>,
}

impl PointerFunction {
    /// Wraps an explicit map.
    ///
    /// # Panics
    ///
    /// Panics if any value is `≥ map.len()`.
    pub fn new(map: Vec<u32>) -> Self {
        let n = map.len() as u32;
        assert!(map.iter().all(|&v| v < n), "value out of range");
        Self { map }
    }

    /// Uniformly random function.
    pub fn random(n: usize, rng: &mut StdRng) -> Self {
        Self::new((0..n).map(|_| rng.random_range(0..n as u32)).collect())
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.map.len()
    }

    /// `f(j)`.
    pub fn apply(&self, j: u32) -> u32 {
        self.map[j as usize]
    }

    /// `true` iff some value has at least `r` preimages
    /// (Definition 6.1: `r`-non-injective).
    pub fn is_r_non_injective(&self, r: usize) -> bool {
        let mut counts = vec![0usize; self.n()];
        for &v in &self.map {
            counts[v as usize] += 1;
            if counts[v as usize] >= r {
                return true;
            }
        }
        false
    }
}

/// Pointer Chasing: `p` players computing `f_1(f_2(⋯ f_p(0) ⋯))`.
#[derive(Debug, Clone)]
pub struct PointerChasing {
    fs: Vec<PointerFunction>,
}

impl PointerChasing {
    /// Wraps explicit functions.
    ///
    /// # Panics
    ///
    /// Panics on an empty list or domain mismatch.
    pub fn new(fs: Vec<PointerFunction>) -> Self {
        assert!(!fs.is_empty());
        let n = fs[0].n();
        assert!(fs.iter().all(|f| f.n() == n));
        Self { fs }
    }

    /// Random instance.
    pub fn random(n: usize, p: usize, rng: &mut StdRng) -> Self {
        Self::new((0..p).map(|_| PointerFunction::random(n, rng)).collect())
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.fs[0].n()
    }

    /// Players.
    pub fn p(&self) -> usize {
        self.fs.len()
    }

    /// `f_i` (1-based).
    pub fn f(&self, i: usize) -> &PointerFunction {
        &self.fs[i - 1]
    }

    /// The chase `f_1(f_2(⋯ f_p(0) ⋯))`.
    pub fn solve(&self) -> u32 {
        let mut cur = 0u32;
        for f in self.fs.iter().rev() {
            cur = f.apply(cur);
        }
        cur
    }
}

/// Equal Pointer Chasing (Definition 6.3): do two pointer chases land on
/// the same value?
#[derive(Debug, Clone)]
pub struct EqualPointerChasing {
    /// First chase.
    pub left: PointerChasing,
    /// Second chase.
    pub right: PointerChasing,
}

impl EqualPointerChasing {
    /// Pairs two chases.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn new(left: PointerChasing, right: PointerChasing) -> Self {
        assert_eq!(left.n(), right.n());
        assert_eq!(left.p(), right.p());
        Self { left, right }
    }

    /// Random instance.
    pub fn random(n: usize, p: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let left = PointerChasing::random(n, p, &mut rng);
        let right = PointerChasing::random(n, p, &mut rng);
        Self::new(left, right)
    }

    /// The Equal Pointer Chasing output.
    pub fn output(&self) -> bool {
        self.left.solve() == self.right.solve()
    }

    /// The *Limited* variant's promise (Definition 6.3): `true` iff some
    /// function on either side is `r`-non-injective, in which case the
    /// limited problem's output is defined to be 1 regardless of the
    /// chases.
    pub fn has_r_non_injective(&self, r: usize) -> bool {
        self.left
            .fs
            .iter()
            .chain(&self.right.fs)
            .any(|f| f.is_r_non_injective(r))
    }

    /// Equal *Limited* Pointer Chasing output (Definition 6.3).
    pub fn limited_output(&self, r: usize) -> bool {
        self.has_r_non_injective(r) || self.output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_function_image() {
        let f = SetFunction::new(vec![vec![1, 2], vec![2], vec![0]]);
        let img = f.image(&BitSet::from_iter(3, [0, 2]));
        assert_eq!(img.to_vec(), vec![0, 1, 2]);
        let inv = f.inverse();
        assert_eq!(inv[2], vec![0, 1]);
        assert_eq!(inv[0], vec![2]);
        assert_eq!(inv[1], vec![0]);
    }

    #[test]
    fn set_chasing_composes_right_to_left() {
        // f2({0}) = {1, 2}; f1({1, 2}) = {0} ∪ {2} = {0, 2}.
        let f1 = SetFunction::new(vec![vec![9 % 3], vec![0], vec![2]]);
        let f2 = SetFunction::new(vec![vec![1, 2], vec![0], vec![0]]);
        let sc = SetChasing::new(vec![f1, f2]);
        assert_eq!(sc.solve().to_vec(), vec![0, 2]);
    }

    #[test]
    fn isc_output_detects_intersection() {
        // Left chase ends at {1}; right ends at {1} → intersect.
        let id = |n: usize| SetFunction::new((0..n).map(|j| vec![j as u32]).collect());
        let to1 = SetFunction::new(vec![vec![1], vec![1], vec![1]]);
        let left = SetChasing::new(vec![to1.clone(), id(3)]);
        let right = SetChasing::new(vec![to1, id(3)]);
        assert!(IntersectionSetChasing::new(left.clone(), right).output());
        // Right ends at {2} → disjoint.
        let to2 = SetFunction::new(vec![vec![2], vec![2], vec![2]]);
        let right2 = SetChasing::new(vec![to2, id(3)]);
        assert!(!IntersectionSetChasing::new(left, right2).output());
    }

    #[test]
    fn pointer_chasing_composes() {
        let f1 = PointerFunction::new(vec![2, 0, 1]);
        let f2 = PointerFunction::new(vec![1, 2, 0]);
        // f2(0) = 1; f1(1) = 0.
        let pc = PointerChasing::new(vec![f1, f2]);
        assert_eq!(pc.solve(), 0);
    }

    #[test]
    fn r_non_injectivity() {
        let f = PointerFunction::new(vec![0, 0, 0, 1]);
        assert!(f.is_r_non_injective(3));
        assert!(!f.is_r_non_injective(4));
        let inj = PointerFunction::new(vec![1, 2, 3, 0]);
        assert!(!inj.is_r_non_injective(2));
    }

    #[test]
    fn equal_pointer_chasing_and_limited_variant() {
        let same = PointerFunction::new(vec![1, 1]);
        let e = EqualPointerChasing::new(
            PointerChasing::new(vec![same.clone()]),
            PointerChasing::new(vec![same.clone()]),
        );
        assert!(e.output());
        assert!(
            e.has_r_non_injective(2),
            "constant function is 2-non-injective"
        );
        assert!(e.limited_output(2));
        assert!(
            e.limited_output(3) == e.output(),
            "no 3-non-injectivity → plain output"
        );
    }

    #[test]
    fn random_isc_hits_both_outputs() {
        let mut ones = 0;
        let trials = 60;
        for seed in 0..trials {
            if IntersectionSetChasing::random(8, 2, 2, seed).output() {
                ones += 1;
            }
        }
        assert!(ones > 0, "never intersects — generator too sparse");
        assert!(ones < trials, "always intersects — generator too dense");
    }
}
