//! Two-party communication Set Cover (Section 3, Theorem 3.1).
//!
//! Alice holds a family `F_A`, Bob holds `F_B`, both over a shared
//! universe; Bob must output a minimum cover of `U` from `F_A ∪ F_B`
//! after receiving a single message from Alice. The paper's key
//! observation: deciding whether a cover of size 2 exists reduces to
//! (Many vs Many)-Set Disjointness on *complements* —
//!
//! > `U ⊆ r_a ∪ r_b  ⟺  (U \ r_a) ∩ (U \ r_b) = ∅`
//!
//! — which in turn is at least as hard as the (Many vs One) variant
//! that [`crate::recover`] proves needs Ω(mn) bits. This module builds
//! those instances and verifies the observation constructively; the
//! single-pass streaming bound (Theorem 3.8) follows because a p-pass
//! s-space streaming algorithm yields a p-round O(sp)-bit protocol.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sc_bitset::BitSet;
use sc_setsystem::{SetSystem, SetSystemBuilder};

/// A two-party Set Cover instance.
#[derive(Debug, Clone)]
pub struct TwoPartySetCover {
    universe: usize,
    alice: Vec<BitSet>,
    bob: Vec<BitSet>,
}

impl TwoPartySetCover {
    /// Wraps explicit families.
    ///
    /// # Panics
    ///
    /// Panics if any set ranges over a different universe.
    pub fn new(universe: usize, alice: Vec<BitSet>, bob: Vec<BitSet>) -> Self {
        for s in alice.iter().chain(&bob) {
            assert_eq!(s.universe(), universe, "universe mismatch");
        }
        Self {
            universe,
            alice,
            bob,
        }
    }

    /// The hard distribution behind Theorem 3.1: Alice's sets uniformly
    /// random; Bob's sets random but *dense* (each element kept with
    /// probability `1 - 1/4 = 3/4`), so that size-2 covers are rare but
    /// possible — the "cover of size 2 vs 3" gap instances.
    pub fn random(n: usize, m_alice: usize, m_bob: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let alice = (0..m_alice)
            .map(|_| BitSet::from_iter(n, (0..n as u32).filter(|_| rng.random_bool(0.5))))
            .collect();
        let bob = (0..m_bob)
            .map(|_| BitSet::from_iter(n, (0..n as u32).filter(|_| rng.random_bool(0.75))))
            .collect();
        Self {
            universe: n,
            alice,
            bob,
        }
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Alice's family.
    pub fn alice(&self) -> &[BitSet] {
        &self.alice
    }

    /// Bob's family.
    pub fn bob(&self) -> &[BitSet] {
        &self.bob
    }

    /// Decides "∃ cover of size ≤ 2 using one set from each party" by
    /// definition: some `r_a ∪ r_b ⊇ U`.
    pub fn has_cross_cover_of_size_2(&self) -> bool {
        let full = BitSet::full(self.universe);
        self.alice.iter().any(|ra| {
            self.bob.iter().any(|rb| {
                let mut u = ra.clone();
                u.union_with(rb);
                u == full
            })
        })
    }

    /// The same decision via the paper's complement trick: (Many vs
    /// Many)-Set Disjointness on complemented families.
    pub fn has_cross_cover_via_disjointness(&self) -> bool {
        let complement = |s: &BitSet| {
            let mut c = BitSet::full(self.universe);
            c.difference_with(s);
            c
        };
        let ca: Vec<BitSet> = self.alice.iter().map(complement).collect();
        let cb: Vec<BitSet> = self.bob.iter().map(complement).collect();
        ca.iter().any(|a| cb.iter().any(|b| a.is_disjoint(b)))
    }

    /// Materialises the union family as an ordinary [`SetSystem`]
    /// (Alice's sets first), so the streaming algorithms can run on the
    /// very instances the communication bound reasons about.
    pub fn to_set_system(&self) -> SetSystem {
        let mut b =
            SetSystemBuilder::with_capacity(self.universe, self.alice.len() + self.bob.len());
        for s in self.alice.iter().chain(&self.bob) {
            b.add_set(s.to_vec());
        }
        b.finish()
    }

    /// The trivial one-way protocol's cost: Alice sends her whole
    /// family, `m_A · n` bits. Theorem 3.1 says no single-round
    /// protocol with sub-polynomial error does asymptotically better.
    pub fn naive_protocol_bits(&self) -> usize {
        self.alice.len() * self.universe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crafted(yes: bool) -> TwoPartySetCover {
        let n = 8;
        // Alice covers the low half; Bob covers the high half iff `yes`.
        let alice = vec![BitSet::from_iter(n, 0..4u32), BitSet::from_iter(n, [0, 5])];
        let bob = if yes {
            vec![BitSet::from_iter(n, 4..8u32)]
        } else {
            vec![BitSet::from_iter(n, 4..7u32)]
        };
        TwoPartySetCover::new(n, alice, bob)
    }

    #[test]
    fn size_2_decision_by_definition() {
        assert!(crafted(true).has_cross_cover_of_size_2());
        assert!(!crafted(false).has_cross_cover_of_size_2());
    }

    #[test]
    fn complement_trick_agrees_with_definition() {
        for seed in 0..40 {
            let inst = TwoPartySetCover::random(16, 6, 6, seed);
            assert_eq!(
                inst.has_cross_cover_of_size_2(),
                inst.has_cross_cover_via_disjointness(),
                "seed {seed}: the Section 3 observation must be an equivalence"
            );
        }
    }

    #[test]
    fn both_outcomes_occur_on_the_hard_distribution() {
        let mut yes = 0;
        let trials = 60;
        for seed in 0..trials {
            if TwoPartySetCover::random(12, 4, 4, seed).has_cross_cover_of_size_2() {
                yes += 1;
            }
        }
        assert!(yes > 0, "distribution never has size-2 covers");
        assert!(yes < trials, "distribution always has size-2 covers");
    }

    #[test]
    fn materialised_system_is_solvable_by_streaming_algorithms() {
        let inst = crafted(true);
        let system = inst.to_set_system();
        assert_eq!(system.num_sets(), 3);
        // A size-2 cross cover exists, so the exact optimum is ≤ 2.
        let sets = system.all_bitsets();
        let target = BitSet::full(system.universe());
        let opt = sc_offline::exact(&sets, &target, 1_000_000).unwrap();
        assert!(opt.optimal);
        assert_eq!(opt.cover.len(), 2);
    }

    #[test]
    fn naive_protocol_cost_is_mn() {
        let inst = TwoPartySetCover::random(32, 5, 2, 1);
        assert_eq!(inst.naive_protocol_bits(), 160);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mismatched_universes_rejected() {
        TwoPartySetCover::new(4, vec![BitSet::new(5)], vec![]);
    }
}
