//! Communication-complexity machinery behind the paper's lower bounds.
//!
//! Lower-bound proofs cannot be "run" directly — they contradict the
//! existence of hypothetical protocols. What *can* be run, and what this
//! crate implements, is every constructive gadget those proofs rest on:
//!
//! * **Section 3** (single-pass Ω(mn)): the (Many vs One)-Set
//!   Disjointness problem ([`disjointness`]) and the `algRecoverBit`
//!   decoder of Figure 3.1 ([`recover`]), which reconstructs Alice's
//!   entire random family from disjointness answers alone — the step
//!   that forces any one-pass protocol to carry Ω(mn) bits.
//! * **Section 5** (multi-pass Ω̃(mn^δ)): Pointer/Set Chasing and
//!   Intersection Set Chasing ([`chasing`]), and the gadget reduction of
//!   Figures 5.2–5.4 mapping an ISC instance to a Set Cover instance
//!   whose optimum is `(2p+1)n+1` exactly when the ISC output is 1
//!   ([`reduction_sec5`], Corollary 5.8).
//! * **Section 6** (sparse Ω̃(ms)): Equal Limited Pointer Chasing, its
//!   OR_t composition, and the overlay construction that yields sparse
//!   Set Cover instances ([`reduction_sec6`], Theorem 6.6).
//!
//! The experiments in `sc-bench` verify each gadget's combinatorial
//! claim exactly (via the certified exact solver) and measure the
//! decoder's query/communication costs against the analytic predictions
//! of Lemmas 3.3 and 3.6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chasing;
pub mod disjointness;
pub mod protocol;
pub mod recover;
pub mod reduction_sec5;
pub mod reduction_sec6;
pub mod two_party;
