//! Property tests for the lower-bound gadgets: chasing algebra, overlay
//! invariants, and recovery robustness.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_bitset::BitSet;
use sc_comm::chasing::{
    EqualPointerChasing, IntersectionSetChasing, PointerChasing, SetChasing, SetFunction,
};
use sc_comm::disjointness::AliceInput;
use sc_comm::recover::{recover, RecoverConfig};
use sc_comm::reduction_sec5::reduce;
use sc_comm::reduction_sec6::{overlay_to_isc, OrEqualPointerChasing};

fn set_chasing() -> impl Strategy<Value = SetChasing> {
    (2usize..10, 1usize..4, 1usize..3, any::<u64>()).prop_map(|(n, p, d, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        SetChasing::random(n, p, d, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn set_chase_output_is_reachability(sc in set_chasing()) {
        // The chase output must equal brute-force reachability through
        // the layered graph.
        let n = sc.n();
        let p = sc.p();
        let mut reach = BitSet::from_iter(n, [0u32]);
        for i in (1..=p).rev() {
            let mut next = BitSet::new(n);
            for v in reach.ones() {
                for &t in sc.f(i).targets(v) {
                    next.insert(t);
                }
            }
            reach = next;
        }
        prop_assert_eq!(sc.solve().to_vec(), reach.to_vec());
    }

    #[test]
    fn pointer_chase_is_single_token_set_chase(n in 2usize..10, p in 1usize..4, seed in any::<u64>()) {
        // A pointer chase is a set chase whose functions have
        // out-degree exactly 1; the outputs must coincide.
        let mut rng = StdRng::seed_from_u64(seed);
        let pc = PointerChasing::random(n, p, &mut rng);
        let fs = (1..=p)
            .map(|i| {
                SetFunction::new(
                    (0..n as u32).map(|j| vec![pc.f(i).apply(j)]).collect(),
                )
            })
            .collect();
        let sc = SetChasing::new(fs);
        prop_assert_eq!(sc.solve().to_vec(), vec![pc.solve()]);
    }

    #[test]
    fn reduction_shape_formulas_hold(n in 2usize..8, p in 1usize..4, seed in any::<u64>()) {
        let isc = IntersectionSetChasing::random(n, p, 2, seed);
        let red = reduce(&isc);
        prop_assert_eq!(red.system.universe(), 2 * n * (2 * p + 1) + 2 * p);
        prop_assert_eq!(red.system.num_sets(), (4 * p + 1) * n);
        prop_assert!(red.system.is_coverable());
        prop_assert_eq!(red.yes_cover_size(), (2 * p + 1) * n + 1);
        // Every reduced set is within the gadget size bound: an S-type
        // set holds e + in/out + at most n edge endpoints.
        prop_assert!(red.system.max_set_size() <= n + 3);
    }

    #[test]
    fn overlay_yes_preservation(n in 8usize..24, t in 1usize..4, seed in any::<u64>()) {
        let or = OrEqualPointerChasing::random(n, 2, t, 4, seed);
        let any_equal = or.instances.iter().any(EqualPointerChasing::output);
        let isc = overlay_to_isc(&or, seed ^ 0x5555);
        if any_equal {
            prop_assert!(isc.output(), "overlay must preserve YES instances");
        }
        // Shape invariants of the overlay.
        prop_assert_eq!(isc.n(), n);
        prop_assert_eq!(isc.p(), 2);
    }

    #[test]
    fn recovery_handles_adversarial_small_families(seed in 0u64..40) {
        // Structured (non-random) families with heavy overlap are the
        // worst case for probe collisions; recovery must still converge
        // on intersecting families.
        let n = 24;
        let alice = AliceInput::new(
            n,
            vec![
                BitSet::from_iter(n, (0..12u32).collect::<Vec<_>>()),
                BitSet::from_iter(n, (6..18u32).collect::<Vec<_>>()),
                BitSet::from_iter(n, (12..24u32).collect::<Vec<_>>()),
            ],
        );
        prop_assume!(alice.is_intersecting_family());
        let out = recover(
            &alice,
            &RecoverConfig { seed, max_probes: 200_000, ..Default::default() },
        );
        prop_assert!(out.exact, "seed {seed}: {} candidates", out.recovered.len());
    }
}

mod protocol_props {
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sc_comm::chasing::{IntersectionSetChasing, PointerChasing};
    use sc_comm::protocol::{
        chain_intersection_set_chasing, chain_pointer_chasing, one_round_pointer_chasing, BitBuffer,
    };

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn bit_buffer_round_trips_any_sequence(
            values in proptest::collection::vec((any::<u64>(), 1u32..=64), 0..50)
        ) {
            let mut buf = BitBuffer::new();
            let masked: Vec<(u64, u32)> = values
                .iter()
                .map(|&(v, w)| (if w == 64 { v } else { v & ((1u64 << w) - 1) }, w))
                .collect();
            for &(v, w) in &masked {
                buf.write_bits(v, w);
            }
            prop_assert_eq!(buf.len_bits(), masked.iter().map(|&(_, w)| w as usize).sum::<usize>());
            let mut r = buf.reader();
            for &(v, w) in &masked {
                prop_assert_eq!(r.read_bits(w), v);
            }
        }

        #[test]
        fn protocols_always_agree_with_ground_truth(
            (n, p, seed) in (2usize..40, 1usize..5, any::<u64>())
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let pc = PointerChasing::random(n, p, &mut rng);
            prop_assert_eq!(chain_pointer_chasing(&pc).output, pc.solve());
            prop_assert_eq!(one_round_pointer_chasing(&pc).output, pc.solve());
            let isc = IntersectionSetChasing::random(n, p, 2, seed);
            prop_assert_eq!(chain_intersection_set_chasing(&isc).output, isc.output());
        }
    }
}
