//! Criterion bench for E3 (Lemmas 2.3/2.6): reservoir sampling and the
//! size-test inner loop, the per-pass hot path of iterSetCover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_bitset::BitSet;
use sc_core::sampling::sample_from_bitset;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampling_2_6");
    for n in [4096usize, 65536] {
        let live = BitSet::from_iter(n, (0..n as u32).filter(|e| e % 3 != 0));
        g.bench_with_input(BenchmarkId::new("reservoir_sample", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(sample_from_bitset(&live, n / 16, &mut rng)))
        });
        let probe: Vec<u32> = (0..n as u32).step_by(7).collect();
        g.bench_with_input(BenchmarkId::new("size_test_scan", n), &n, |b, _| {
            b.iter(|| {
                let hits = probe.iter().filter(|&&e| live.contains(e)).count();
                black_box(hits)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
