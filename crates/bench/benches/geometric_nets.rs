//! Criterion bench for E14: ε-net sampling/verification and the
//! Brönnimann–Goodrich oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_geometry::{
    bronnimann_goodrich, instances, sample_epsilon_net, verify_epsilon_net, BgConfig, ShapeFamily,
};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let inst = instances::random_discs(800, 400, 6, 3);
    let weights = vec![1.0; inst.points.len()];
    let mut g = c.benchmark_group("geometric_nets");
    g.sample_size(10);
    for eps in [0.05f64, 0.15] {
        g.bench_with_input(
            BenchmarkId::new("net_sample_verify", format!("{eps}")),
            &eps,
            |b, &eps| {
                let mut rng = StdRng::seed_from_u64(9);
                b.iter(|| {
                    let net =
                        sample_epsilon_net(&inst.points, ShapeFamily::Discs, eps, 0.2, &mut rng);
                    black_box(verify_epsilon_net(
                        &inst.points,
                        &weights,
                        &inst.shapes,
                        &net,
                        eps,
                    ))
                })
            },
        );
    }
    g.bench_function("bronnimann_goodrich", |b| {
        b.iter(|| {
            black_box(bronnimann_goodrich(
                &inst.points,
                &inst.shapes,
                &BgConfig::default(),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
