//! Criterion bench for E16: the pass-multiplexed executor against the
//! sequential reference on the acceptance-scale planted instance
//! (n = 2¹⁴, m = 2¹³).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_core::{GuessExecutor, IterSetCover, IterSetCoverConfig};
use sc_setsystem::gen;
use sc_stream::run_reported;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let inst = gen::planted(1 << 14, 1 << 13, 32, 42);
    let mut g = c.benchmark_group("multiplex");
    g.sample_size(10);
    for delta in [0.5, 0.25] {
        for (label, executor) in [
            ("sequential", GuessExecutor::Sequential),
            ("multiplexed", GuessExecutor::Multiplexed),
        ] {
            g.bench_with_input(
                BenchmarkId::new(label, delta),
                &(delta, executor),
                |b, &(delta, executor)| {
                    b.iter(|| {
                        let mut alg = IterSetCover::new(IterSetCoverConfig {
                            delta,
                            executor,
                            ..Default::default()
                        });
                        black_box(run_reported(&mut alg, &inst.system))
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
