//! Criterion bench for E4 (Theorem 3.8 / Figure 3.1): the algRecoverBit
//! decoder against the exact disjointness oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_comm::disjointness::AliceInput;
use sc_comm::recover::{recover, RecoverConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("recover_3_1");
    g.sample_size(10);
    for (m, n) in [(8usize, 48usize), (16, 64)] {
        let alice = AliceInput::random(n, m, 3);
        g.bench_with_input(
            BenchmarkId::new("recover", format!("m{m}_n{n}")),
            &alice,
            |b, a| {
                b.iter(|| {
                    black_box(recover(
                        a,
                        &RecoverConfig {
                            seed: 5,
                            ..Default::default()
                        },
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
