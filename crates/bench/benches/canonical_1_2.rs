//! Criterion bench for E5 (Figure 1.2): canonical decomposition versus
//! verbatim projection storage on the two-line instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_geometry::canonical::{storage_comparison, CanonicalStore, RankIndex};
use sc_geometry::instances;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("canonical_1_2");
    g.sample_size(10);
    for half in [32usize, 64] {
        let inst = instances::two_line(half, None, 9);
        g.bench_with_input(
            BenchmarkId::new("storage_comparison", half),
            &inst,
            |b, i| b.iter(|| black_box(storage_comparison(&i.points, &i.shapes, 2))),
        );
        g.bench_with_input(
            BenchmarkId::new("canonical_store_build", half),
            &inst,
            |b, i| {
                b.iter(|| {
                    let idx = RankIndex::build(&i.points);
                    let mut store = CanonicalStore::new();
                    for s in &i.shapes {
                        store.add_shape(&idx, &i.points, s, 2);
                    }
                    black_box(store.len())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
