//! Criterion bench for E2 (Theorem 2.8): iterSetCover across the δ
//! sweep — runtime cost of buying space with passes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_core::{IterSetCover, IterSetCoverConfig};
use sc_setsystem::gen;
use sc_stream::run_reported;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let inst = gen::planted(1024, 2048, 16, 7);
    let mut g = c.benchmark_group("tradeoff_2_8");
    g.sample_size(10);
    for delta in [1.0, 0.5, 1.0 / 3.0, 0.25] {
        g.bench_with_input(
            BenchmarkId::new("delta", format!("{delta:.3}")),
            &delta,
            |b, &d| {
                b.iter(|| {
                    let mut alg = IterSetCover::new(IterSetCoverConfig {
                        delta: d,
                        ..Default::default()
                    });
                    black_box(run_reported(&mut alg, &inst.system))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
