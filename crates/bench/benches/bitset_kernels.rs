//! Criterion bench for E21: the dispatched bitset kernels against the
//! forced-scalar path, plus the bucket-queue greedy oracle against the
//! retained `BinaryHeap` reference.
//!
//! The scalar/dispatched A/B runs in one process via
//! `kernels::force_scalar` — same entry points, same inputs — so the
//! comparison isolates the vector paths from everything else.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_bitset::{kernels, BitSet};
use sc_offline::{greedy_slices, greedy_slices_heap};
use sc_setsystem::gen;
use std::hint::black_box;

const WORDS: usize = 1 << 14; // 1 Mbit bitmaps

fn noise(len: usize, mut seed: u64) -> Vec<u64> {
    (0..len)
        .map(|_| {
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
        .collect()
}

fn strided(words: usize, stride: usize) -> Vec<u32> {
    (0..(words * 64) as u32).step_by(stride).collect()
}

/// Benchmarks `f` once per backend: `dispatched` picks whatever the
/// CPU supports, `scalar` pins the portable path.
fn per_backend<F: FnMut() -> R, R>(g: &mut criterion::BenchmarkGroup<'_>, name: &str, mut f: F) {
    for (label, forced) in [("dispatched", false), ("scalar", true)] {
        kernels::force_scalar(forced);
        g.bench_function(BenchmarkId::new(name, label), |b| b.iter(|| black_box(f())));
    }
    kernels::force_scalar(false);
}

fn bench_kernels(c: &mut Criterion) {
    let a = noise(WORDS, 1);
    let b = noise(WORDS, 2);
    let dense = strided(WORDS, 1);
    let half = strided(WORDS, 2);
    let sparse = strided(WORDS, 64);

    let mut g = c.benchmark_group("bitset_kernels");
    per_backend(&mut g, "and_popcount", || kernels::and_popcount(&a, &b));
    per_backend(&mut g, "count_sorted/dense", || {
        kernels::intersection_count_sorted(&a, &dense)
    });
    per_backend(&mut g, "count_sorted/half", || {
        kernels::intersection_count_sorted(&a, &half)
    });
    per_backend(&mut g, "count_sorted/sparse", || {
        kernels::intersection_count_sorted(&a, &sparse)
    });
    let mut out = Vec::with_capacity(half.len());
    per_backend(&mut g, "intersect_sorted_into/half", || {
        kernels::intersect_sorted_into(&a, &half, &mut out);
        out.len()
    });
    let mut scratch = vec![0u64; WORDS];
    per_backend(&mut g, "remove_sorted/half", || {
        scratch.copy_from_slice(&a);
        kernels::remove_sorted(&mut scratch, &half);
        scratch[0]
    });
    g.finish();
}

fn bench_oracle(c: &mut Criterion) {
    let inst = gen::planted(1 << 14, 1 << 12, 32, 42);
    let sys = &inst.system;
    let m = sys.num_sets();
    let target = BitSet::full(sys.universe());

    let mut g = c.benchmark_group("greedy_oracle");
    g.sample_size(10);
    g.bench_function("heap", |b| {
        b.iter(|| black_box(greedy_slices_heap(m, |i| sys.set(i as u32), &target)))
    });
    g.bench_function("bucket", |b| {
        b.iter(|| black_box(greedy_slices(m, |i| sys.set(i as u32), &target)))
    });
    g.finish();
}

criterion_group!(benches, bench_kernels, bench_oracle);
criterion_main!(benches);
