//! Criterion bench for E1 (Figure 1.1): one timing per algorithm row on
//! a fixed planted workload.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_core::baselines::{
    ChakrabartiWirth, Dimv14, Dimv14Config, EmekRosen, OnePickPerPassGreedy, ProgressiveGreedy,
    StoreAllGreedy,
};
use sc_core::{IterSetCover, IterSetCoverConfig};
use sc_setsystem::gen;
use sc_stream::run_reported;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let inst = gen::planted(512, 1024, 8, 42);
    let mut g = c.benchmark_group("table_1_1");
    g.sample_size(10);

    g.bench_function("store_all_greedy", |b| {
        b.iter(|| black_box(run_reported(&mut StoreAllGreedy, &inst.system)))
    });
    g.bench_function("one_pick_per_pass", |b| {
        b.iter(|| black_box(run_reported(&mut OnePickPerPassGreedy, &inst.system)))
    });
    g.bench_function("progressive_greedy", |b| {
        b.iter(|| black_box(run_reported(&mut ProgressiveGreedy, &inst.system)))
    });
    g.bench_function("emek_rosen", |b| {
        b.iter(|| black_box(run_reported(&mut EmekRosen, &inst.system)))
    });
    g.bench_function("chakrabarti_wirth_p3", |b| {
        b.iter(|| black_box(run_reported(&mut ChakrabartiWirth::new(3), &inst.system)))
    });
    g.bench_function("dimv14_d0.5", |b| {
        b.iter(|| {
            let mut alg = Dimv14::new(Dimv14Config {
                delta: 0.5,
                ..Default::default()
            });
            black_box(run_reported(&mut alg, &inst.system))
        })
    });
    g.bench_function("iter_set_cover_d0.5", |b| {
        b.iter(|| {
            let mut alg = IterSetCover::new(IterSetCoverConfig::default());
            black_box(run_reported(&mut alg, &inst.system))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
