//! Criterion bench for E15: bit-counted protocol executions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_comm::chasing::{IntersectionSetChasing, PointerChasing};
use sc_comm::protocol::{
    alice_sends_all, chain_intersection_set_chasing, chain_pointer_chasing,
    one_round_pointer_chasing,
};
use sc_comm::two_party::TwoPartySetCover;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_bits");
    g.sample_size(10);
    let inst = TwoPartySetCover::random(128, 64, 64, 5);
    g.bench_function("alice_sends_all", |b| {
        b.iter(|| black_box(alice_sends_all(&inst)))
    });
    for n in [256usize, 2048] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let pc = PointerChasing::random(n, 3, &mut rng);
        g.bench_with_input(BenchmarkId::new("chain_pointer", n), &pc, |b, pc| {
            b.iter(|| black_box(chain_pointer_chasing(pc)))
        });
        g.bench_with_input(BenchmarkId::new("one_round_pointer", n), &pc, |b, pc| {
            b.iter(|| black_box(one_round_pointer_chasing(pc)))
        });
        let isc = IntersectionSetChasing::random(n, 3, 2, n as u64);
        g.bench_with_input(BenchmarkId::new("chain_isc", n), &isc, |b, isc| {
            b.iter(|| black_box(chain_intersection_set_chasing(isc)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
