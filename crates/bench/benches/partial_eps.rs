//! Criterion bench for E11 (ε-Partial Set Cover): partial iterSetCover
//! across the ε sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_core::partial::{run_partial, PartialIterSetCover};
use sc_core::IterSetCoverConfig;
use sc_setsystem::gen;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let inst = gen::planted(1024, 1024, 8, 13);
    let mut g = c.benchmark_group("partial_eps");
    g.sample_size(10);
    for eps in [0.0, 0.1, 0.5] {
        g.bench_with_input(
            BenchmarkId::new("epsilon", format!("{eps:.1}")),
            &eps,
            |b, &e| {
                b.iter(|| {
                    let mut alg = PartialIterSetCover::new(IterSetCoverConfig {
                        delta: 0.25,
                        ..Default::default()
                    });
                    black_box(run_partial(&mut alg, &inst.system, e))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
