//! Criterion bench for E8 (Theorem 6.6): the OR_t overlay and the
//! sparse reduction chain.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_comm::reduction_sec6::{overlay_to_isc, OrEqualPointerChasing, Sec6Instance};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_6_6");
    g.sample_size(10);
    let or = OrEqualPointerChasing::random(512, 2, 2, 5, 3);
    g.bench_function("overlay_to_isc", |b| {
        b.iter(|| black_box(overlay_to_isc(&or, 77)))
    });
    g.bench_function("full_chain", |b| {
        b.iter(|| black_box(Sec6Instance::random(512, 2, 2, 5, 3)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
