//! Criterion bench for E7 (Theorem 5.4): building the ISC → Set Cover
//! reduction and certifying its optimum exactly.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bitset::BitSet;
use sc_comm::chasing::IntersectionSetChasing;
use sc_comm::reduction_sec5::reduce;
use sc_offline::exact;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduction_5_4");
    g.sample_size(10);
    let isc = IntersectionSetChasing::random(4, 2, 2, 11);
    g.bench_function("reduce", |b| b.iter(|| black_box(reduce(&isc))));
    let red = reduce(&isc);
    let sets = red.system.all_bitsets();
    let target = BitSet::full(red.system.universe());
    g.bench_function("exact_certify", |b| {
        b.iter(|| black_box(exact(&sets, &target, 50_000_000)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
