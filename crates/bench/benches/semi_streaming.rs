//! Criterion bench for E9 ([ER14]/[CW16]): the Θ̃(n)-space algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_core::baselines::{ChakrabartiWirth, EmekRosen};
use sc_setsystem::gen;
use sc_stream::run_reported;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let inst = gen::planted(2048, 1024, 8, 1);
    let mut g = c.benchmark_group("semi_streaming");
    g.sample_size(10);
    g.bench_function("emek_rosen", |b| {
        b.iter(|| black_box(run_reported(&mut EmekRosen, &inst.system)))
    });
    for p in [1usize, 3, 5] {
        g.bench_with_input(BenchmarkId::new("chakrabarti_wirth", p), &p, |b, &p| {
            b.iter(|| black_box(run_reported(&mut ChakrabartiWirth::new(p), &inst.system)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
