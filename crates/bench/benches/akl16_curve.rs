//! Criterion bench for E13 ([AKL16]): the single-pass α trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_core::baselines::OnePassProjection;
use sc_setsystem::gen;
use sc_stream::run_reported;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let inst = gen::uniform_random(1024, 2048, 0.1, 77);
    let mut g = c.benchmark_group("akl16_curve");
    g.sample_size(10);
    for alpha in [1.0f64, 8.0, 32.0] {
        g.bench_with_input(
            BenchmarkId::new("one_pass_projection", alpha as u64),
            &alpha,
            |b, &a| {
                b.iter(|| black_box(run_reported(&mut OnePassProjection::new(a), &inst.system)))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
