//! Criterion bench for E6 (Theorem 4.6): algGeomSC per shape family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_geometry::{instances, AlgGeomSc, AlgGeomScConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("geometric_4_6");
    g.sample_size(10);
    let discs = instances::random_discs(512, 256, 8, 1);
    let rects = instances::random_rects(512, 256, 8, 2);
    let tris = instances::random_fat_triangles(512, 256, 8, 3);
    for (name, inst) in [
        ("discs", &discs),
        ("rects", &rects),
        ("fat_triangles", &tris),
    ] {
        g.bench_with_input(BenchmarkId::new("alg_geom_sc", name), inst, |b, i| {
            b.iter(|| {
                let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
                black_box(alg.run(i))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
