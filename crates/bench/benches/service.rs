//! Criterion bench for E17: batches of identical cover queries through
//! the `sc_service` scan scheduler at concurrency 1 / 4 / 16, against
//! the naive replay (each query run solo, scans unshared).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_core::{IterSetCover, IterSetCoverConfig};
use sc_service::{QuerySpec, ServiceBuilder, ServiceConfig};
use sc_setsystem::gen;
use sc_stream::run_reported;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let inst = gen::planted(1 << 12, 1 << 11, 16, 42);
    let service = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .tenant("default", inst.system.clone())
        .build();
    let spec = QuerySpec::IterCover {
        delta: 0.5,
        seed: 7,
    };
    let mut g = c.benchmark_group("service");
    g.sample_size(10);
    for clients in [1usize, 4, 16] {
        g.bench_with_input(
            BenchmarkId::new("batched", clients),
            &clients,
            |b, &clients| {
                let specs = vec![spec; clients];
                b.iter(|| black_box(service.run_batch(&specs)))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("naive-solo", clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    for _ in 0..clients {
                        let mut alg = IterSetCover::new(IterSetCoverConfig {
                            delta: 0.5,
                            seed: 7,
                            ..Default::default()
                        });
                        black_box(run_reported(&mut alg, &inst.system));
                    }
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
