//! Criterion bench for E12 (ablations): the paper's design choices on
//! versus off.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_core::{IterSetCover, IterSetCoverConfig};
use sc_geometry::{instances, AlgGeomSc, AlgGeomScConfig};
use sc_setsystem::gen;
use sc_stream::run_reported;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    let inst = gen::planted(512, 1024, 8, 99);
    g.bench_function("iter_with_size_test", |b| {
        b.iter(|| {
            let mut alg = IterSetCover::new(IterSetCoverConfig::default());
            black_box(run_reported(&mut alg, &inst.system))
        })
    });
    g.bench_function("iter_no_size_test", |b| {
        b.iter(|| {
            let mut alg = IterSetCover::new(IterSetCoverConfig {
                disable_size_test: true,
                ..Default::default()
            });
            black_box(run_reported(&mut alg, &inst.system))
        })
    });

    let adv = instances::two_line(32, None, 4);
    g.bench_function("geom_canonical", |b| {
        b.iter(|| {
            let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
            black_box(alg.run(&adv))
        })
    });
    g.bench_function("geom_dedupe_only", |b| {
        b.iter(|| {
            let mut alg = AlgGeomSc::new(AlgGeomScConfig {
                decompose_rects: false,
                ..Default::default()
            });
            black_box(alg.run(&adv))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
