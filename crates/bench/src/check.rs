//! The CI perf-regression gate: compare a fresh experiment run against
//! a committed `BENCH_*.json` baseline.
//!
//! `repro --check BENCH.json [--tolerance PCT]` re-runs every
//! experiment recorded in the baseline **at the baseline's scale** and
//! compares the *deterministic* fields — passes, space peaks, cover
//! sizes, scan counts, cache hits, sharing ratios — cell by cell.
//! Timing-dependent columns (wall-clock milliseconds, queries/second,
//! speedups, mid-stream join counts) are skipped by header name, so
//! the gate is immune to runner speed while still catching a
//! regression in anything the streaming model actually charges for.
//!
//! The `BENCH_*.json` files are written by `repro --json` without any
//! external serializer, so the reader here is a matching minimal JSON
//! parser (objects, arrays, strings, numbers, booleans, null) — enough
//! for the `sc-bench/repro/v1` schema and nothing more.

use crate::{Scale, Table};
use std::collections::BTreeMap;

/// A parsed JSON value (just enough for the repro schema).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is irrelevant to the schema.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json: {msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("open escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // The writer only escapes control chars, so
                            // surrogate pairs never occur in our files.
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 sequence byte-for-byte.
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf8"))?;
                    out.push_str(chunk);
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in number"))?;
        text.parse()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Parses one JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// A message with the byte offset of the first syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// One experiment recorded in a baseline file.
#[derive(Debug, Clone)]
pub struct BaselineExperiment {
    /// The registry id (`multiplex`, `service`, `load`, …).
    pub id: String,
    /// The recorded table.
    pub table: Table,
}

/// A parsed `BENCH_*.json` baseline.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// The scale the baseline was recorded at (re-used for the fresh
    /// run so rows are comparable).
    pub scale: Scale,
    /// Every experiment in file order.
    pub experiments: Vec<BaselineExperiment>,
}

fn str_array(value: &Json, what: &str) -> Result<Vec<String>, String> {
    value
        .as_arr()
        .ok_or_else(|| format!("baseline: {what} is not an array"))?
        .iter()
        .map(|cell| {
            cell.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("baseline: {what} holds a non-string"))
        })
        .collect()
}

/// Decodes a `sc-bench/repro/v1` document into its tables.
///
/// # Errors
///
/// A message naming the missing or mistyped field.
pub fn load_baseline(text: &str) -> Result<Baseline, String> {
    let doc = parse_json(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("baseline: missing schema")?;
    if schema != "sc-bench/repro/v1" {
        return Err(format!("baseline: unsupported schema {schema:?}"));
    }
    let scale = match doc.get("scale").and_then(Json::as_str) {
        Some("quick") => Scale::Quick,
        Some("full") => Scale::Full,
        other => return Err(format!("baseline: bad scale {other:?}")),
    };
    let mut experiments = Vec::new();
    for exp in doc
        .get("experiments")
        .and_then(Json::as_arr)
        .ok_or("baseline: missing experiments array")?
    {
        let id = exp
            .get("id")
            .and_then(Json::as_str)
            .ok_or("baseline: experiment without id")?
            .to_string();
        let table = exp
            .get("table")
            .ok_or_else(|| format!("baseline: experiment {id} without table"))?;
        let title = table
            .get("title")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("baseline: table of {id} without title"))?
            .to_string();
        let headers = str_array(table.get("headers").unwrap_or(&Json::Null), "headers")?;
        let mut rows = Vec::new();
        for (r, row) in table
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("baseline: table of {id} without rows"))?
            .iter()
            .enumerate()
        {
            let row = str_array(row, "row")?;
            // Ragged rows would make the per-column comparison index
            // out of bounds; a truncated baseline is a parse error,
            // not a drift report.
            if row.len() != headers.len() {
                return Err(format!(
                    "baseline: table of {id}, row {r}: {} cells for {} headers",
                    row.len(),
                    headers.len()
                ));
            }
            rows.push(row);
        }
        let notes = str_array(table.get("notes").unwrap_or(&Json::Null), "notes")?;
        experiments.push(BaselineExperiment {
            id,
            table: Table {
                title,
                headers,
                rows,
                notes,
            },
        });
    }
    Ok(Baseline { scale, experiments })
}

/// Tolerance settings of the perf-regression gate: a global default
/// plus per-experiment overrides, parsed from repeated `--tolerance`
/// flags (`--tolerance 2` sets the default, `--tolerance load=10`
/// overrides one experiment id). Per-experiment overrides let a noisy
/// load test be gated with slack without loosening the deterministic
/// baselines checked in the same run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tolerances {
    default_pct: f64,
    per_experiment: BTreeMap<String, f64>,
}

impl Tolerances {
    /// Parses the values of every `--tolerance` flag, in order. A bare
    /// `PCT` sets the global default (at most once); an `ID=PCT` pair
    /// overrides experiment `ID`.
    ///
    /// # Errors
    ///
    /// A message naming the malformed value: non-numeric or negative
    /// percentages, a repeated bare default, or a repeated override
    /// for the same experiment.
    pub fn parse(values: &[String]) -> Result<Tolerances, String> {
        let mut t = Tolerances::default();
        let mut default_seen = false;
        for v in values {
            match v.split_once('=') {
                Some((id, pct)) => {
                    if id.is_empty() {
                        return Err(format!("--tolerance {v:?}: missing experiment id"));
                    }
                    let pct = parse_pct(pct, v)?;
                    if t.per_experiment.insert(id.to_string(), pct).is_some() {
                        return Err(format!("--tolerance {id}=… given twice"));
                    }
                }
                None => {
                    if default_seen {
                        return Err(format!(
                            "--tolerance {v:?}: the global default was already set"
                        ));
                    }
                    default_seen = true;
                    t.default_pct = parse_pct(v, v)?;
                }
            }
        }
        Ok(t)
    }

    /// The relative slack (percent) granted to experiment `id`.
    pub fn for_experiment(&self, id: &str) -> f64 {
        self.per_experiment
            .get(id)
            .copied()
            .unwrap_or(self.default_pct)
    }

    /// The experiment ids with explicit overrides (for validation
    /// against the registry).
    pub fn overridden_ids(&self) -> impl Iterator<Item = &str> {
        self.per_experiment.keys().map(String::as_str)
    }
}

fn parse_pct(text: &str, flag_value: &str) -> Result<f64, String> {
    let pct: f64 = text
        .parse()
        .map_err(|_| format!("bad --tolerance value {flag_value:?}"))?;
    if !pct.is_finite() || pct < 0.0 {
        return Err(format!(
            "--tolerance {flag_value:?}: percentage must be finite and non-negative"
        ));
    }
    Ok(pct)
}

/// Markers of load- or wall-clock-dependent columns, matched against
/// lowercased headers: such columns vary run to run and are exempt from
/// the regression gate.
const NONDETERMINISTIC_MARKERS: &[&str] = &["ms", "qps", "seconds", "speedup", "joins"];

/// `true` when a column holds deterministic model observables (passes,
/// space, cover sizes, scan counts, hits, ratios) that the gate
/// compares; `false` for timing-dependent columns (any header with a
/// `ms` / `qps` / `seconds` / `speedup` / `joins` word, or a queue-wait
/// column).
pub fn deterministic_column(header: &str) -> bool {
    let h = header.to_ascii_lowercase();
    !h.starts_with("wait")
        && !h
            .split_whitespace()
            .any(|word| NONDETERMINISTIC_MARKERS.contains(&word))
}

/// Numeric comparison helper: strips a trailing `x` (sharing ratios)
/// or `%` so `"16.0x"` compares as `16.0`.
fn as_number(cell: &str) -> Option<f64> {
    cell.trim().trim_end_matches(['x', '%']).parse::<f64>().ok()
}

fn cells_match(expected: &str, actual: &str, tolerance_pct: f64) -> bool {
    if expected == actual {
        return true;
    }
    match (as_number(expected), as_number(actual)) {
        (Some(e), Some(a)) => {
            let scale = e.abs().max(1e-12);
            ((a - e).abs() / scale) * 100.0 <= tolerance_pct
        }
        _ => false,
    }
}

/// Compares a fresh table against the baseline's, returning one
/// human-readable drift message per mismatch (empty = gate passes).
/// Only deterministic columns participate; numeric cells may drift up
/// to `tolerance_pct` percent relative, non-numeric cells must match
/// exactly. Structural drift (changed headers, added or removed rows)
/// is reported as drift too — a baseline refresh is a deliberate act.
pub fn compare_tables(baseline: &Table, fresh: &Table, tolerance_pct: f64) -> Vec<String> {
    let mut drift = Vec::new();
    if baseline.headers != fresh.headers {
        drift.push(format!(
            "headers changed: baseline {:?} vs fresh {:?} (refresh the committed BENCH file)",
            baseline.headers, fresh.headers
        ));
        return drift;
    }
    if baseline.rows.len() != fresh.rows.len() {
        drift.push(format!(
            "row count changed: baseline {} vs fresh {} (refresh the committed BENCH file)",
            baseline.rows.len(),
            fresh.rows.len()
        ));
        return drift;
    }
    for (r, (brow, frow)) in baseline.rows.iter().zip(&fresh.rows).enumerate() {
        for (c, header) in baseline.headers.iter().enumerate() {
            if !deterministic_column(header) {
                continue;
            }
            let (expected, actual) = (&brow[c], &frow[c]);
            if !cells_match(expected, actual, tolerance_pct) {
                drift.push(format!(
                    "row {r} ({}), column {header:?}: baseline {expected:?} vs fresh {actual:?}",
                    brow.first().map_or("?", String::as_str),
                ));
            }
        }
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_repro_schema() {
        let doc = r#"{"schema":"sc-bench/repro/v1","scale":"full","experiments":[
            {"id":"service","what":"E17","seconds":3.2,
             "table":{"title":"T","headers":["workload","scans","ms"],
                      "rows":[["identical ä","5","94.9"]],"notes":["n=1"]}}]}"#;
        let baseline = load_baseline(doc).expect("parses");
        assert_eq!(baseline.scale, Scale::Full);
        assert_eq!(baseline.experiments.len(), 1);
        let t = &baseline.experiments[0].table;
        assert_eq!(t.headers, vec!["workload", "scans", "ms"]);
        assert_eq!(t.rows[0][0], "identical ä");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,2",
            "{\"schema\":\"nope\",\"scale\":\"full\",\"experiments\":[]}",
            "{\"schema\":\"sc-bench/repro/v1\",\"scale\":\"warp\",\"experiments\":[]}",
            "{\"schema\":\"sc-bench/repro/v1\",\"scale\":\"full\"} trailing",
        ] {
            assert!(load_baseline(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn ragged_baseline_rows_are_a_parse_error_not_a_panic() {
        let doc = r#"{"schema":"sc-bench/repro/v1","scale":"full","experiments":[
            {"id":"service","table":{"title":"T","headers":["a","b"],
             "rows":[["only-one-cell"]],"notes":[]}}]}"#;
        let err = load_baseline(doc).unwrap_err();
        assert!(err.contains("row 0"), "{err}");
        assert!(err.contains("1 cells for 2 headers"), "{err}");
    }

    #[test]
    fn deterministic_columns_exclude_timing() {
        for h in [
            "physical scans",
            "naive scans",
            "sharing",
            "n",
            "identical",
            "hits",
            "sol",
        ] {
            assert!(deterministic_column(h), "{h} should be checked");
        }
        for h in [
            "ms",
            "seq ms",
            "qps",
            "speedup",
            "p50 ms",
            "wait p90 ms",
            "joins",
            "seconds",
        ] {
            assert!(!deterministic_column(h), "{h} should be skipped");
        }
    }

    fn table(rows: Vec<Vec<&str>>) -> Table {
        let mut t = Table::new("t", &["alg", "scans", "ms"]);
        for row in rows {
            t.row(row.into_iter().map(str::to_string).collect());
        }
        t
    }

    #[test]
    fn flags_deterministic_drift_only() {
        let baseline = table(vec![vec!["iter", "5", "94.9"]]);
        let same = table(vec![vec!["iter", "5", "188.1"]]);
        assert!(compare_tables(&baseline, &same, 0.0).is_empty());
        let drifted = table(vec![vec!["iter", "6", "94.9"]]);
        let drift = compare_tables(&baseline, &drifted, 0.0);
        assert_eq!(drift.len(), 1);
        assert!(drift[0].contains("scans"), "{drift:?}");
        // 20% tolerance forgives 5 → 6.
        assert!(compare_tables(&baseline, &drifted, 20.0).is_empty());
    }

    #[test]
    fn tolerances_parse_defaults_and_per_experiment_overrides() {
        let strs = |vals: &[&str]| -> Vec<String> { vals.iter().map(|s| s.to_string()).collect() };
        let t = Tolerances::parse(&strs(&["2", "load=10", "coalesce=5"])).expect("parses");
        assert_eq!(t.for_experiment("multiplex"), 2.0, "global default");
        assert_eq!(t.for_experiment("load"), 10.0, "override wins");
        assert_eq!(t.for_experiment("coalesce"), 5.0);
        assert_eq!(
            t.overridden_ids().collect::<Vec<_>>(),
            vec!["coalesce", "load"]
        );
        let none = Tolerances::parse(&[]).expect("empty parses");
        assert_eq!(none.for_experiment("load"), 0.0, "gate defaults to exact");
        for bad in [
            &["nan"][..],
            &["-3"],
            &["load=x"],
            &["=5"],
            &["load=-1"],
            &["2", "3"],
            &["load=1", "load=2"],
        ] {
            assert!(Tolerances::parse(&strs(bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn ratio_cells_compare_numerically() {
        assert!(cells_match("16.0x", "16.0x", 0.0));
        assert!(cells_match("16.0x", "16.1x", 5.0));
        assert!(!cells_match("16.0x", "8.0x", 5.0));
        assert!(!cells_match("iter", "greedy", 50.0));
    }

    #[test]
    fn structural_drift_is_reported() {
        let baseline = table(vec![vec!["iter", "5", "1.0"]]);
        let extra = table(vec![vec!["iter", "5", "1.0"], vec!["greedy", "1", "2.0"]]);
        assert!(!compare_tables(&baseline, &extra, 0.0).is_empty());
    }
}
