//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p sc-bench --bin repro --release            # all experiments
//! cargo run -p sc-bench --bin repro --release -- thm2.8  # one experiment
//! cargo run -p sc-bench --bin repro --release -- --quick # reduced sweeps
//! cargo run -p sc-bench --bin repro --release -- --list  # experiment ids
//! ```

use sc_bench::experiments::{by_id, registry, Runner};
use sc_bench::Scale;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let wanted: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    if args.iter().any(|a| a == "--list") {
        for (id, what, _) in registry() {
            println!("{id:<12} {what}");
        }
        return;
    }

    let jobs: Vec<(&'static str, &'static str, Runner)> =
        if wanted.is_empty() {
            registry()
        } else {
            wanted
                .iter()
                .map(|id| {
                    let f = by_id(id).unwrap_or_else(|| {
                        eprintln!("unknown experiment id {id:?}; try --list");
                        std::process::exit(2);
                    });
                    let (rid, what, _) = registry()
                        .into_iter()
                        .find(|(rid, _, _)| *rid == id.as_str())
                        .expect("id resolved above");
                    (rid, what, f)
                })
                .collect()
        };

    println!("# Streaming Set Cover (PODS 2016) — experiment reproduction");
    println!("# scale: {}", if quick { "quick" } else { "full" });
    println!();
    for (id, what, f) in jobs {
        let start = Instant::now();
        let table = f(scale);
        println!("{table}");
        println!("  [{id}: {what} — {:.1}s]", start.elapsed().as_secs_f64());
        println!();
    }
}
