//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p sc-bench --bin repro --release            # all experiments
//! cargo run -p sc-bench --bin repro --release -- thm2.8  # one experiment
//! cargo run -p sc-bench --bin repro --release -- --quick # reduced sweeps
//! cargo run -p sc-bench --bin repro --release -- --list  # experiment ids
//! cargo run -p sc-bench --bin repro --release -- --json BENCH_repro.json
//! cargo run -p sc-bench --bin repro --release -- --check BENCH_service.json
//! ```
//!
//! `--json PATH` additionally writes every table plus per-experiment
//! wall-clock seconds as a JSON document, the format the repository's
//! `BENCH_*.json` perf-trajectory files use. The document records the
//! active bitset kernel backend (`"kernel_backend":"avx2"` / `"scalar"`)
//! so an artifact always says which dispatch path produced its timings.
//!
//! `--check PATH` (repeatable) switches to the CI perf-regression
//! gate: every experiment recorded in the committed baseline re-runs
//! at the baseline's scale and its deterministic fields (passes, space
//! peaks, cover sizes, scan counts, cache hits, sharing ratios — not
//! wall-clock) are compared cell by cell; any drift fails the run.
//! `--tolerance PCT` allows numeric cells that much relative slack
//! globally; `--tolerance ID=PCT` (repeatable) overrides one
//! experiment — e.g. `--tolerance load=10` grants the noisy load test
//! slack while the deterministic baselines stay gated at 0%. Combined
//! with `--json PATH`, the gate also records its own fresh runs in
//! the `sc-bench/repro/v1` schema, so one full-scale pass serves both
//! the comparison and the artifact (the nightly CI job does exactly
//! this).

use sc_bench::check::{compare_tables, load_baseline, Tolerances};
use sc_bench::experiments::{by_id, registry, Runner};
use sc_bench::{Scale, Table};
use std::time::Instant;

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", cells.join(","))
}

fn table_json(table: &Table) -> String {
    let rows: Vec<String> = table.rows.iter().map(|r| json_str_array(r)).collect();
    format!(
        "{{\"title\":{},\"headers\":{},\"rows\":[{}],\"notes\":{}}}",
        json_str(&table.title),
        json_str_array(&table.headers),
        rows.join(","),
        json_str_array(&table.notes),
    )
}

/// Flags whose following argument is a value, not an experiment id.
const VALUE_FLAGS: &[&str] = &["--json", "--check", "--tolerance"];

/// Runs the perf-regression gate for one committed baseline file,
/// appending the fresh runs (the tables just computed for comparison)
/// to `json_entries` so a gate run can double as the artifact run.
/// Returns whether every deterministic field matched, plus the
/// baseline's recorded scale (`None` when the file failed to load).
fn check_baseline(
    path: &str,
    tolerances: &Tolerances,
    json_entries: &mut Vec<String>,
) -> (bool, Option<Scale>) {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("check {path}: {e}");
            return (false, None);
        }
    };
    let baseline = match load_baseline(&text) {
        Ok(baseline) => baseline,
        Err(e) => {
            eprintln!("check {path}: {e}");
            return (false, None);
        }
    };
    let mut ok = true;
    for exp in &baseline.experiments {
        let Some(runner) = by_id(&exp.id) else {
            eprintln!(
                "check {path}: unknown experiment id {:?} in baseline",
                exp.id
            );
            ok = false;
            continue;
        };
        let what = registry()
            .into_iter()
            .find(|(rid, _, _)| *rid == exp.id)
            .map(|(_, what, _)| what)
            .expect("id resolved above");
        let tolerance_pct = tolerances.for_experiment(&exp.id);
        let start = Instant::now();
        let fresh = runner(baseline.scale);
        let seconds = start.elapsed().as_secs_f64();
        json_entries.push(format!(
            "{{\"id\":{},\"what\":{},\"seconds\":{seconds:.3},\"table\":{}}}",
            json_str(&exp.id),
            json_str(what),
            table_json(&fresh),
        ));
        let drift = compare_tables(&exp.table, &fresh, tolerance_pct);
        if drift.is_empty() {
            println!(
                "check {path} [{}]: ok ({seconds:.1}s, tolerance {tolerance_pct}%)",
                exp.id
            );
        } else {
            ok = false;
            println!("check {path} [{}]: DRIFT", exp.id);
            for line in &drift {
                println!("  {line}");
            }
        }
    }
    (ok, Some(baseline.scale))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let value_of = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    std::process::exit(2);
                })
                .clone()
        })
    };
    let json_path: Option<String> = value_of("--json");
    let checks: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--check")
        .map(|(i, _)| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("--check needs a baseline file path");
                std::process::exit(2);
            })
        })
        .collect();
    if !checks.is_empty() {
        // The gate replays the baseline's own experiment list at the
        // baseline's recorded scale: a --quick flag or a positional
        // experiment id would be silently ignored, so reject the
        // combination. (`--json` is allowed: it records the gate's own
        // fresh runs, so one full-scale pass serves both the artifact
        // and the comparison.)
        let stray = args
            .iter()
            .enumerate()
            .find(|(i, a)| {
                let flag_value = *i > 0 && VALUE_FLAGS.contains(&args[i - 1].as_str());
                (*a == "--quick") || (!a.starts_with("--") && !flag_value)
            })
            .map(|(_, a)| a.clone());
        if let Some(stray) = stray {
            eprintln!(
                "--check runs the regression gate alone (experiments and scale come from the \
                 baseline file); remove {stray:?}"
            );
            std::process::exit(2);
        }
        let tolerance_values: Vec<String> = args
            .iter()
            .enumerate()
            .filter(|(_, a)| *a == "--tolerance")
            .map(|(i, _)| {
                args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--tolerance needs a value (PCT or ID=PCT)");
                    std::process::exit(2);
                })
            })
            .collect();
        let tolerances = Tolerances::parse(&tolerance_values).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        for id in tolerances.overridden_ids() {
            if by_id(id).is_none() {
                eprintln!("--tolerance {id}=…: unknown experiment id {id:?}; try --list");
                std::process::exit(2);
            }
        }
        // Run every requested check (no short-circuit) before judging.
        let mut json_entries = Vec::new();
        let mut scales = Vec::new();
        let results: Vec<bool> = checks
            .iter()
            .map(|path| {
                let (ok, scale) = check_baseline(path, &tolerances, &mut json_entries);
                scales.extend(scale);
                ok
            })
            .collect();
        if let Some(path) = json_path {
            // The fresh runs double as the artifact of this gate pass.
            // The schema records one scale per document; baselines
            // checked together are expected to share one.
            let scale = scales.first().copied().unwrap_or(Scale::Full);
            if scales.iter().any(|s| *s != scale) {
                eprintln!("warning: baselines mix scales; {path} records the first one");
            }
            let doc = format!(
                "{{\"schema\":\"sc-bench/repro/v1\",\"scale\":{},\"kernel_backend\":{},\"experiments\":[{}]}}\n",
                json_str(match scale {
                    Scale::Quick => "quick",
                    Scale::Full => "full",
                }),
                json_str(sc_bitset::kernels::backend_name()),
                json_entries.join(","),
            );
            if let Err(e) = std::fs::write(&path, doc) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("# wrote {path}");
        }
        std::process::exit(i32::from(!results.iter().all(|&ok| ok)));
    }
    if args.iter().any(|a| a == "--tolerance") {
        eprintln!("--tolerance only applies to the --check regression gate");
        std::process::exit(2);
    }
    let wanted: Vec<&String> = args
        .iter()
        .enumerate()
        // Flag *values* are skipped by position, not by content, so an
        // experiment id that happens to equal a file path survives.
        .filter(|(i, a)| {
            let flag_value = *i > 0 && VALUE_FLAGS.contains(&args[i - 1].as_str());
            !a.starts_with("--") && !flag_value
        })
        .map(|(_, a)| a)
        .collect();

    if args.iter().any(|a| a == "--list") {
        for (id, what, _) in registry() {
            println!("{id:<12} {what}");
        }
        return;
    }

    let jobs: Vec<(&'static str, &'static str, Runner)> = if wanted.is_empty() {
        registry()
    } else {
        wanted
            .iter()
            .map(|id| {
                let f = by_id(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment id {id:?}; try --list");
                    std::process::exit(2);
                });
                let (rid, what, _) = registry()
                    .into_iter()
                    .find(|(rid, _, _)| *rid == id.as_str())
                    .expect("id resolved above");
                (rid, what, f)
            })
            .collect()
    };

    println!("# Streaming Set Cover (PODS 2016) — experiment reproduction");
    println!("# scale: {}", if quick { "quick" } else { "full" });
    println!();
    let mut json_entries: Vec<String> = Vec::new();
    for (id, what, f) in jobs {
        let start = Instant::now();
        let table = f(scale);
        let seconds = start.elapsed().as_secs_f64();
        println!("{table}");
        println!("  [{id}: {what} — {seconds:.1}s]");
        println!();
        if json_path.is_some() {
            json_entries.push(format!(
                "{{\"id\":{},\"what\":{},\"seconds\":{seconds:.3},\"table\":{}}}",
                json_str(id),
                json_str(what),
                table_json(&table),
            ));
        }
    }
    if let Some(path) = json_path {
        let doc = format!(
            "{{\"schema\":\"sc-bench/repro/v1\",\"scale\":{},\"kernel_backend\":{},\"experiments\":[{}]}}\n",
            json_str(if quick { "quick" } else { "full" }),
            json_str(sc_bitset::kernels::backend_name()),
            json_entries.join(","),
        );
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("# wrote {path}");
    }
}
