//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p sc-bench --bin repro --release            # all experiments
//! cargo run -p sc-bench --bin repro --release -- thm2.8  # one experiment
//! cargo run -p sc-bench --bin repro --release -- --quick # reduced sweeps
//! cargo run -p sc-bench --bin repro --release -- --list  # experiment ids
//! cargo run -p sc-bench --bin repro --release -- --json BENCH_repro.json
//! ```
//!
//! `--json PATH` additionally writes every table plus per-experiment
//! wall-clock seconds as a JSON document, the format the repository's
//! `BENCH_*.json` perf-trajectory files use.

use sc_bench::experiments::{by_id, registry, Runner};
use sc_bench::{Scale, Table};
use std::time::Instant;

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", cells.join(","))
}

fn table_json(table: &Table) -> String {
    let rows: Vec<String> = table.rows.iter().map(|r| json_str_array(r)).collect();
    format!(
        "{{\"title\":{},\"headers\":{},\"rows\":[{}],\"notes\":{}}}",
        json_str(&table.title),
        json_str_array(&table.headers),
        rows.join(","),
        json_str_array(&table.notes),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let json_flag = args.iter().position(|a| a == "--json");
    let json_path: Option<String> = json_flag
        .map(|i| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("--json needs a file path");
                std::process::exit(2);
            })
        })
        .cloned();
    let wanted: Vec<&String> = args
        .iter()
        .enumerate()
        // The --json *value* is skipped by position, not by content, so
        // an experiment id that happens to equal the path survives.
        .filter(|(i, a)| !a.starts_with("--") && json_flag != Some(i.wrapping_sub(1)))
        .map(|(_, a)| a)
        .collect();

    if args.iter().any(|a| a == "--list") {
        for (id, what, _) in registry() {
            println!("{id:<12} {what}");
        }
        return;
    }

    let jobs: Vec<(&'static str, &'static str, Runner)> = if wanted.is_empty() {
        registry()
    } else {
        wanted
            .iter()
            .map(|id| {
                let f = by_id(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment id {id:?}; try --list");
                    std::process::exit(2);
                });
                let (rid, what, _) = registry()
                    .into_iter()
                    .find(|(rid, _, _)| *rid == id.as_str())
                    .expect("id resolved above");
                (rid, what, f)
            })
            .collect()
    };

    println!("# Streaming Set Cover (PODS 2016) — experiment reproduction");
    println!("# scale: {}", if quick { "quick" } else { "full" });
    println!();
    let mut json_entries: Vec<String> = Vec::new();
    for (id, what, f) in jobs {
        let start = Instant::now();
        let table = f(scale);
        let seconds = start.elapsed().as_secs_f64();
        println!("{table}");
        println!("  [{id}: {what} — {seconds:.1}s]");
        println!();
        if json_path.is_some() {
            json_entries.push(format!(
                "{{\"id\":{},\"what\":{},\"seconds\":{seconds:.3},\"table\":{}}}",
                json_str(id),
                json_str(what),
                table_json(&table),
            ));
        }
    }
    if let Some(path) = json_path {
        let doc = format!(
            "{{\"schema\":\"sc-bench/repro/v1\",\"scale\":{},\"experiments\":[{}]}}\n",
            json_str(if quick { "quick" } else { "full" }),
            json_entries.join(","),
        );
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("# wrote {path}");
    }
}
