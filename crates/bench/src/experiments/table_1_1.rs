//! E1 — the Figure 1.1 summary table, regenerated empirically.
//!
//! Every algorithm row of the paper's table runs on the same planted
//! workload (`OPT = k` provable) under the instrumented streaming
//! model; the table reports measured solution quality, passes, and
//! peak working memory next to the paper's analytic bounds.

use crate::table::{fmt_count, fmt_ratio};
use crate::{Scale, Table};
use sc_core::baselines::{
    ChakrabartiWirth, Dimv14, Dimv14Config, EmekRosen, OnePickPerPassGreedy, ProgressiveGreedy,
    SahaGetoor, StoreAllGreedy,
};
use sc_core::{IterSetCover, IterSetCoverConfig};
use sc_offline::OfflineSolver;
use sc_setsystem::gen;
use sc_stream::{run_reported, StreamingSetCover};

/// Runs every Figure 1.1 row on a planted instance.
pub fn table_1_1(scale: Scale) -> Table {
    let (n, m, k) = scale.pick((256, 512, 8), (2048, 4096, 16));
    let inst = gen::planted(n, m, k, 42);
    let opt = inst.planted.as_ref().expect("planted").len();

    let mut t = Table::new(
        format!(
            "E1 / Figure 1.1 — summary table on {} (OPT = {opt})",
            inst.label
        ),
        &[
            "algorithm",
            "paper bound (approx, passes, space)",
            "|sol|",
            "ratio",
            "passes",
            "space (words)",
        ],
    );

    let mut push = |alg: &mut dyn StreamingSetCover, bound: &str| {
        let r = run_reported(alg, &inst.system);
        assert!(r.verified.is_ok(), "{}: {:?}", r.algorithm, r.verified);
        t.row(vec![
            r.algorithm.clone(),
            bound.to_string(),
            r.cover_size().to_string(),
            fmt_ratio(r.ratio(opt)),
            r.passes.to_string(),
            fmt_count(r.space_words),
        ]);
    };

    push(&mut StoreAllGreedy, "ln n, 1, O(mn)");
    push(&mut OnePickPerPassGreedy, "ln n, ≤n, O(n)");
    push(&mut ProgressiveGreedy, "O(log n), O(log n), O(n)");
    push(
        &mut SahaGetoor::default(),
        "O(log n), O(log n), O(n² ln n) [SG09]",
    );
    push(&mut EmekRosen, "O(√n), 1, Θ̃(n) [ER14]");
    push(&mut ChakrabartiWirth::new(2), "O(n^⅓), 2, Θ̃(n) [CW16]");
    push(&mut ChakrabartiWirth::new(4), "O(n^⅕), 4, Θ̃(n) [CW16]");
    push(
        &mut Dimv14::new(Dimv14Config {
            delta: 0.5,
            ..Default::default()
        }),
        "O(4^{1/δ}ρ), O(4^{1/δ}), Õ(mn^δ) [DIMV14]",
    );
    push(
        &mut IterSetCover::new(IterSetCoverConfig {
            delta: 0.5,
            ..Default::default()
        }),
        "O(ρ/δ), 2/δ, Õ(mn^δ) [Thm 2.8]",
    );
    push(
        &mut IterSetCover::new(IterSetCoverConfig {
            delta: 0.5,
            solver: OfflineSolver::DEFAULT_EXACT,
            ..Default::default()
        }),
        "O(1/δ), 2/δ, Õ(mn^δ) [Thm 2.8, ρ=1]",
    );
    push(
        &mut IterSetCover::new(IterSetCoverConfig {
            delta: 0.25,
            ..Default::default()
        }),
        "O(ρ/δ), 2/δ, Õ(mn^δ) [Thm 2.8, δ=¼]",
    );

    t.note(format!(
        "input size Σ|r| = {} words stored by the 1-pass greedy; the worst-case input the paper's O(mn) refers to is m·n/2 = {} words; n = {n}, m = {m}",
        fmt_count(inst.system.total_size() / 2),
        fmt_count(m * n / 2),
    ));
    t.note("passes/space are parallel-accounted across the log n guesses of k (sum of peaks, max of passes)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table_has_all_rows_and_sane_orderings() {
        let t = table_1_1(Scale::Quick);
        assert_eq!(t.rows.len(), 11);
        // Row 0 is store-all: 1 pass and the largest space.
        let space = |i: usize| t.rows[i][5].replace(',', "").parse::<usize>().unwrap();
        let passes = |i: usize| t.rows[i][4].parse::<usize>().unwrap();
        assert_eq!(passes(0), 1);
        // Store-all uses more space than every Θ̃(n)-space baseline
        // (rows 1,2: O(n)-space greedies; 4,5,6: ER14/CW16).
        for i in [1, 2, 4, 5, 6] {
            assert!(space(0) > space(i), "row {i}: {} !< {}", space(i), space(0));
        }
        // iterSetCover (row 8) stays within its 2/δ (+1) budget.
        assert!(passes(8) <= 5, "iterSetCover passes {}", passes(8));
    }
}
