//! E5 — Figure 1.2: quadratically many distinct shallow projections
//! versus the near-linear canonical family.
//!
//! On the two-line construction with `n` points there are `n²/4`
//! rectangles, *each containing exactly two points and no two with the
//! same projection*. Verbatim projection storage is therefore Ω(n²)
//! words; the rank-space dyadic canonical family stores Õ(n) pieces.

use crate::table::{fmt_count, fmt_ratio};
use crate::{Scale, Table};
use sc_geometry::canonical::storage_comparison;
use sc_geometry::instances;

/// Storage sweep over the two-line construction.
pub fn canonical_1_2(scale: Scale) -> Table {
    let halves: Vec<usize> = scale.pick(vec![16, 32], vec![16, 32, 64, 128]);
    let mut t = Table::new(
        "E5 / Figure 1.2 — verbatim projections vs canonical pieces (two-line instance)",
        &[
            "n (points)",
            "m = n²/4",
            "distinct projections",
            "verbatim words",
            "canonical candidates",
            "canonical words",
            "words ratio",
            "cand. / (n·log²n)",
        ],
    );
    for half in halves {
        let inst = instances::two_line(half, None, 9);
        let n = inst.points.len();
        let cmp = storage_comparison(&inst.points, &inst.shapes, 2);
        assert_eq!(cmp.explicit_projections, half * half);
        let log2n = (n as f64).log2();
        t.row(vec![
            n.to_string(),
            fmt_count(inst.shapes.len()),
            fmt_count(cmp.explicit_projections),
            fmt_count(cmp.explicit_words),
            fmt_count(cmp.canonical_candidates),
            fmt_count(cmp.canonical_words),
            fmt_ratio(cmp.explicit_words as f64 / cmp.canonical_words.max(1) as f64),
            format!(
                "{:.3}",
                cmp.canonical_candidates as f64 / (n as f64 * log2n * log2n)
            ),
        ]);
    }
    t.note("the last column staying bounded as n grows is the Õ(n) claim of Lemma 4.4 / substitution 4");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_wins_and_gap_widens() {
        let t = canonical_1_2(Scale::Quick);
        let ratio = |i: usize| t.rows[i][6].parse::<f64>().unwrap();
        assert!(ratio(0) > 1.0, "canonical must already win at n=32");
        assert!(ratio(1) > ratio(0), "the gap must widen with n");
        // Normalised candidate count stays bounded.
        for row in &t.rows {
            let norm: f64 = row[7].parse().unwrap();
            assert!(norm < 4.0, "{row:?}");
        }
    }
}
