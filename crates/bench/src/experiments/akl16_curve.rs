//! E13 — the single-pass `Õ(mn/α)` trade-off curve of \[AKL16\]
//! (Section 1.1's closing remark, generalising Theorem 3.8).
//!
//! [`OnePassProjection`] is the matching upper bound: threshold takes
//! plus verbatim residual projections below `n/α` ids each. The sweep
//! measures its footprint against the `m·n/(2α)` words the curve
//! predicts (two ids per word), and the quality against `α/OPT + ρ`.

use crate::table::{fmt_count, fmt_ratio};
use crate::{Scale, Table};
use sc_core::baselines::OnePassProjection;
use sc_setsystem::gen;
use sc_stream::run_reported;

/// Sweeps the space/quality knob α at a fixed instance.
pub fn akl16_curve(scale: Scale) -> Table {
    let (n, m) = scale.pick((512, 1024), (2048, 4096));
    // Uniform density 0.1: every set is ~n/10 ids, so the α sweep
    // crosses the threshold regime within the sampled range.
    let inst = gen::uniform_random(n, m, 0.1, 77);
    let sets = inst.system.all_bitsets();
    let target = sc_bitset::BitSet::full(n);
    let opt_lb = sc_offline::dual_lower_bound(&sets, &target)
        .unwrap_or(1)
        .max(1);
    let greedy_size = sc_offline::greedy(&sets, &target)
        .map(|c| c.len())
        .unwrap_or(usize::MAX);

    let mut t = Table::new(
        format!(
            "E13 / [AKL16] single-pass curve on uniform(n={n}, m={m}, p=0.1); OPT ∈ [{opt_lb}, {greedy_size}]"
        ),
        &["α", "passes", "space (words)", "curve m·n/(2α)", "space/curve", "|sol|", "ratio vs greedy"],
    );

    let alphas: Vec<f64> = scale.pick(
        vec![1.0, 8.0, 16.0, 64.0],
        vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, (n as f64).sqrt()],
    );
    for &alpha in &alphas {
        let r = run_reported(&mut OnePassProjection::new(alpha), &inst.system);
        assert!(r.verified.is_ok(), "α={alpha}: {:?}", r.verified);
        let curve = (m as f64 * n as f64 / (2.0 * alpha)).max(1.0);
        t.row(vec![
            format!("{alpha:.0}"),
            r.passes.to_string(),
            fmt_count(r.space_words),
            fmt_count(curve as usize),
            format!("{:.2}", r.space_words as f64 / curve),
            r.cover_size().to_string(),
            fmt_ratio(r.cover_size() as f64 / greedy_size as f64),
        ]);
    }
    t.note("space stays at-or-below the m·n/(2α) curve throughout (thin sets leave slack at small α where Σ|r| < mn/(2α)); the α=1 endpoint is the Ω(mn) wall of Theorem 3.8");
    t.note("quality bound |sol| ≤ α + ρ·OPT: the ratio column degrades additively with α, not multiplicatively");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_falls_with_alpha_and_quality_degrades_gently() {
        let t = akl16_curve(Scale::Quick);
        let space = |i: usize| t.rows[i][2].replace(',', "").parse::<usize>().unwrap();
        let first = space(0);
        let last = space(t.rows.len() - 1);
        assert!(
            last < first,
            "α sweep should shrink space: {first} -> {last}"
        );
        // One pass always.
        for row in &t.rows {
            assert_eq!(row[1], "1");
        }
    }
}
