//! One module per experiment id (DESIGN.md §3).

mod ablations;
mod admission;
mod akl16_curve;
mod canonical_1_2;
mod coalesce;
mod geometric_4_6;
mod geometric_nets;
mod interleave;
mod kernels;
mod multiplex;
mod netload;
mod nisan_endpoint;
mod observability;
mod partial_eps;
mod protocol_bits;
mod recover_3_1;
mod reduction_5_4;
mod sampling_2_6;
mod semi_streaming;
mod service;
mod service_load;
mod sparse_6_6;
mod table_1_1;
mod tenants;
mod tradeoff_2_8;

pub use ablations::ablations;
pub use admission::admission;
pub use akl16_curve::akl16_curve;
pub use canonical_1_2::canonical_1_2;
pub use coalesce::coalesce;
pub use geometric_4_6::geometric_4_6;
pub use geometric_nets::geometric_nets;
pub use interleave::interleave;
pub use kernels::kernels;
pub use multiplex::multiplex;
pub use netload::netload;
pub use nisan_endpoint::nisan_endpoint;
pub use observability::observability;
pub use partial_eps::partial_eps;
pub use protocol_bits::protocol_bits;
pub use recover_3_1::recover_3_1;
pub use reduction_5_4::reduction_5_4;
pub use sampling_2_6::sampling_2_6;
pub use semi_streaming::semi_streaming;
pub use service::service;
pub use service_load::service_load;
pub use sparse_6_6::sparse_6_6;
pub use table_1_1::table_1_1;
pub use tenants::tenants;
pub use tradeoff_2_8::tradeoff_2_8;

use crate::{Scale, Table};

/// An experiment entry point: scale in, table out.
pub type Runner = fn(Scale) -> Table;

/// The experiment registry: `(repro id, paper artifact, runner)`.
pub fn registry() -> Vec<(&'static str, &'static str, Runner)> {
    vec![
        ("table1.1", "Figure 1.1 summary table", table_1_1 as Runner),
        ("thm2.8", "Theorem 2.8 pass/space trade-off", tradeoff_2_8),
        (
            "lem2.6",
            "Lemmas 2.3 & 2.6 sampling diagnostics",
            sampling_2_6,
        ),
        ("thm3.8", "Theorem 3.8 / Figure 3.1 recovery", recover_3_1),
        ("fig1.2", "Figure 1.2 canonical storage", canonical_1_2),
        ("thm4.6", "Theorem 4.6 geometric set cover", geometric_4_6),
        (
            "thm5.4",
            "Theorem 5.4 / Corollary 5.8 reduction",
            reduction_5_4,
        ),
        ("thm6.6", "Theorem 6.6 sparse instances", sparse_6_6),
        ("semi", "[ER14]/[CW16] semi-streaming rows", semi_streaming),
        ("nisan", "Nisan endpoint δ = Θ(1/log n)", nisan_endpoint),
        ("partial", "ε-Partial Set Cover sweep", partial_eps),
        ("ablations", "design-choice ablations", ablations),
        ("akl16", "[AKL16] single-pass α curve", akl16_curve),
        (
            "nets",
            "ε-nets + Brönnimann–Goodrich oracle",
            geometric_nets,
        ),
        (
            "protocol",
            "protocol bits vs lower-bound curves",
            protocol_bits,
        ),
        (
            "multiplex",
            "E16 pass-multiplexed executor wall-clock",
            multiplex,
        ),
        (
            "service",
            "E17 cover-query service scan sharing & throughput",
            service,
        ),
        (
            "load",
            "E18 service load test: cache, mid-stream joins, latency percentiles",
            service_load,
        ),
        (
            "coalesce",
            "E19 in-flight query coalescing: K identical queries, one job",
            coalesce,
        ),
        (
            "admission",
            "E20 pass-aligned non-blocking admission: queue wait vs the boundary baseline",
            admission,
        ),
        (
            "kernels",
            "E21 vectorized bitset kernels + bucket-queue greedy oracle",
            kernels,
        ),
        (
            "observability",
            "E22 telemetry overhead: gate off vs on over the service workloads",
            observability,
        ),
        (
            "tenants",
            "E23 multi-tenant serving: cross-tenant admission fairness under hot/cold load",
            tenants,
        ),
        (
            "netload",
            "E24 event-driven front door: connection soak, overload shedding, flat memory",
            netload,
        ),
        (
            "interleave",
            "E25 shard-granular cross-tenant interleaving: K narrow tenants, one fan-out",
            interleave,
        ),
    ]
}

/// Looks up one experiment by repro id.
pub fn by_id(id: &str) -> Option<Runner> {
    registry()
        .into_iter()
        .find(|(rid, _, _)| *rid == id)
        .map(|(_, _, f)| f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_resolvable() {
        let reg = registry();
        let mut ids: Vec<&str> = reg.iter().map(|(id, _, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), reg.len());
        for (id, _, _) in &reg {
            assert!(by_id(id).is_some());
        }
        assert!(by_id("nope").is_none());
    }
}
