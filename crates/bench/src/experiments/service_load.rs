//! E18 — cover-query service under load: latency percentiles, outcome
//! cache, and mid-stream admission.
//!
//! Not a paper artifact: this experiment turns E17's scan-sharing
//! table into a load test. Three deterministic batch workloads and one
//! staggered serve workload run against one planted repository,
//! reporting physical scans, cache hits, mid-stream joins, and the
//! log-bucketed queue-wait / latency percentiles of
//! `ServiceMetrics` (recorded in `BENCH_service_load.json`):
//!
//! * **unique seeds** — every query distinct: pure scan sharing, no
//!   cache traffic.
//! * **repeats** — `max_inflight` unique queries then nothing but
//!   repeats: everything past the first wave is answered from the
//!   outcome cache in zero additional physical scans.
//! * **mixed tenants** — iter/partial/greedy mix with recurring specs:
//!   hits happen exactly when a repeat arrives after its original
//!   retired (slots free mid-run as short queries finish).
//! * **staggered burst (serve)** — one query opens a fresh epoch
//!   group, the rest of the burst arrives while its first scan is in
//!   flight and joins mid-stream (pass-aligned), cutting queue wait to
//!   near zero instead of a full epoch.
//!
//! The scans / hits columns of the batch rows are deterministic given
//! the seeds and are what the CI perf gate (`repro --check`)
//! re-verifies; the joins column and every timing column
//! (`… ms`, `qps`) are load-dependent and excluded from the check.

use crate::{Scale, Table};
use sc_service::{QueryOutcome, QuerySpec, Service, ServiceBuilder, ServiceConfig, ServiceMetrics};
use sc_setsystem::{gen, SetSystem};
use std::time::Duration;

fn iter(seed: u64) -> QuerySpec {
    QuerySpec::IterCover { delta: 0.5, seed }
}

fn row_cells(
    workload: &str,
    queries: usize,
    scans: String,
    metrics: &ServiceMetrics,
) -> Vec<String> {
    vec![
        workload.into(),
        queries.to_string(),
        scans,
        metrics.cache_hits.to_string(),
        metrics.mid_stream_admissions.to_string(),
        format!(
            "{:.1}",
            metrics.queue_wait.percentile(90.0).as_secs_f64() * 1e3
        ),
        format!(
            "{:.1}",
            metrics.latency.percentile(50.0).as_secs_f64() * 1e3
        ),
        format!(
            "{:.1}",
            metrics.latency.percentile(90.0).as_secs_f64() * 1e3
        ),
        format!(
            "{:.1}",
            metrics.latency.percentile(99.0).as_secs_f64() * 1e3
        ),
        format!(
            "{:.1}",
            queries as f64 / metrics.elapsed.as_secs_f64().max(1e-9)
        ),
    ]
}

fn fresh_service(system: &SetSystem, cfg: ServiceConfig) -> Service {
    // One service (and thus one outcome cache) per workload row keeps
    // every row's hit counts independent of row order.
    ServiceBuilder::new()
        .config(cfg)
        .tenant("default", system.clone())
        .build()
}

/// Runs the four load workloads and tabulates scans, cache traffic,
/// mid-stream joins, and latency percentiles.
pub fn service_load(scale: Scale) -> Table {
    let mut table = Table::new(
        "E18 — cover-query service under load: cache, mid-stream joins, latency percentiles",
        &[
            "workload",
            "queries",
            "scans",
            "hits",
            "joins",
            "wait p90 ms",
            "p50 ms",
            "p90 ms",
            "p99 ms",
            "qps",
        ],
    );
    let (n, m, k) = scale.pick((1 << 11, 1 << 10, 16), (1 << 14, 1 << 13, 32));
    let (unique_q, wave, repeat_q) = scale.pick((12, 4, 16), (32, 8, 48));
    let inst = gen::planted(n, m, k, 42);

    // Workload 1: all-unique batch — scan sharing only.
    let specs: Vec<QuerySpec> = (0..unique_q as u64).map(iter).collect();
    let service = fresh_service(&inst.system, ServiceConfig::default());
    let (outcomes, metrics) = service.run_batch(&specs);
    let max_passes = outcomes.iter().map(|o| o.logical_passes).max().unwrap();
    assert_eq!(metrics.physical_scans, max_passes);
    assert_eq!(metrics.cache_hits, 0);
    table.row(row_cells(
        "unique iter seeds (batch)",
        specs.len(),
        metrics.physical_scans.to_string(),
        &metrics,
    ));

    // Workload 2: one identical spec throughout — wave 1 (the
    // `max_inflight` slots) runs and retires together, everything
    // after is answered from the cache in zero additional scans.
    let specs: Vec<QuerySpec> = (0..repeat_q).map(|_| iter(0)).collect();
    let service = fresh_service(
        &inst.system,
        ServiceConfig {
            max_inflight: wave,
            ..Default::default()
        },
    );
    let (outcomes, metrics) = service.run_batch(&specs);
    assert_eq!(metrics.cache_misses, wave, "wave 1 runs before any retire");
    assert_eq!(metrics.cache_hits, specs.len() - wave);
    assert_eq!(
        metrics.physical_scans, outcomes[0].logical_passes,
        "hits must not cost scans"
    );
    for o in &outcomes[wave..] {
        assert!(o.cached);
        assert_eq!(o.cover, outcomes[0].cover, "hit is bit-identical");
        assert_eq!(o.logical_passes, outcomes[0].logical_passes);
        assert_eq!(o.space_words, outcomes[0].space_words);
    }
    table.row(row_cells(
        "repeats beyond wave 1 (batch)",
        specs.len(),
        metrics.physical_scans.to_string(),
        &metrics,
    ));

    // Workload 3: mixed tenants with recurring specs.
    let specs: Vec<QuerySpec> = (0..repeat_q as u64)
        .map(|i| match i % 3 {
            0 => iter(i % 6),
            1 => QuerySpec::PartialCover {
                epsilon: 0.2,
                delta: 0.5,
                seed: i % 6,
            },
            _ => QuerySpec::GreedyBaseline,
        })
        .collect();
    let service = fresh_service(
        &inst.system,
        ServiceConfig {
            max_inflight: wave,
            ..Default::default()
        },
    );
    let (_, metrics) = service.run_batch(&specs);
    table.row(row_cells(
        "mixed iter/partial/greedy (batch)",
        specs.len(),
        metrics.physical_scans.to_string(),
        &metrics,
    ));

    // Workload 4: staggered burst in serve mode — the head opens a
    // fresh epoch group, the rest arrives while its first scan is in
    // flight and joins mid-stream.
    let burst = wave;
    let service = fresh_service(
        &inst.system,
        ServiceConfig {
            admission_window: Duration::from_secs(30),
            ..Default::default()
        },
    );
    let (outcomes, metrics) = service.serve(|handle| {
        let head = handle.submit(iter(100)).expect("open");
        std::thread::sleep(Duration::from_millis(30));
        let rest: Vec<_> = (1..burst as u64)
            .map(|i| handle.submit(iter(100 + i)).expect("open"))
            .collect();
        let mut outcomes: Vec<QueryOutcome> = vec![head.wait().expect("served")];
        outcomes.extend(rest.into_iter().map(|t| t.wait().expect("served")));
        outcomes
    });
    assert!(outcomes.iter().all(|o| o.goal_met()));
    table.row(row_cells(
        "staggered burst (serve)",
        burst,
        // Physical scans here depend on which side of the scan
        // boundary each straggler lands on; the deterministic version
        // of this claim is pinned by `service_scan_sharing`.
        "-".into(),
        &metrics,
    ));

    table.note(format!(
        "planted n={n}, m={m}, k={k}; batch workloads are deterministic given the seeds"
    ));
    table.note(format!(
        "repeats: wave 1 = {wave} copies of one spec (max_inflight slots), every later copy cache-hits"
    ));
    table.note("staggered burst: head submitted first, the rest 30 ms later join its first scan mid-stream");
    table.note("joins and timing columns (… ms, qps) are load-dependent; repro --check skips them");
    table
}
