//! E16 — wall-clock of the pass-multiplexed guess executor.
//!
//! Not a paper artifact: this experiment tracks the implementation's
//! own perf trajectory. Both executors are observationally identical
//! (same covers, passes, space — pinned by `multiplex_equivalence` in
//! `sc-core`), so the only interesting column is wall-clock, reported
//! via [`RunReport::elapsed`](sc_stream::RunReport). The acceptance bar
//! recorded in EXPERIMENTS.md is a ≥ 2× speedup on a planted instance
//! with n ≥ 2¹⁴, m ≥ 2¹³.

use crate::{Scale, Table};
use sc_core::{GuessExecutor, IterSetCover, IterSetCoverConfig};
use sc_setsystem::gen;
use sc_stream::run_reported;

/// Times both executors over a small grid of planted instances.
pub fn multiplex(scale: Scale) -> Table {
    let mut table = Table::new(
        "E16 — sequential vs pass-multiplexed guess executor",
        &["n", "m", "δ", "seq ms", "mux ms", "speedup", "identical"],
    );
    let grid: Vec<(usize, usize, usize, f64)> = match scale {
        Scale::Quick => vec![(1 << 10, 1 << 9, 8, 0.5), (1 << 10, 1 << 9, 8, 0.25)],
        Scale::Full => vec![
            (1 << 14, 1 << 13, 32, 0.5),
            (1 << 14, 1 << 13, 32, 0.25),
            (1 << 15, 1 << 14, 32, 0.5),
            (1 << 15, 1 << 14, 32, 0.25),
        ],
    };
    let repeats = scale.pick(1, 3);
    for (n, m, k, delta) in grid {
        let inst = gen::planted(n, m, k, 42);
        let mut best = [f64::MAX; 2];
        let mut reports = Vec::new();
        for (which, executor) in [GuessExecutor::Sequential, GuessExecutor::Multiplexed]
            .into_iter()
            .enumerate()
        {
            for _ in 0..repeats {
                let mut alg = IterSetCover::new(IterSetCoverConfig {
                    delta,
                    executor,
                    ..Default::default()
                });
                let report = run_reported(&mut alg, &inst.system);
                assert!(report.verified.is_ok(), "{}: not a cover", report.algorithm);
                best[which] = best[which].min(report.elapsed.as_secs_f64());
                reports.push(report);
            }
        }
        let seq = &reports[0];
        let mux = &reports[repeats];
        let identical = seq.cover == mux.cover
            && seq.passes == mux.passes
            && seq.space_words == mux.space_words;
        table.row(vec![
            n.to_string(),
            m.to_string(),
            format!("{delta}"),
            format!("{:.1}", best[0] * 1e3),
            format!("{:.1}", best[1] * 1e3),
            format!("{:.2}x", best[0] / best[1]),
            identical.to_string(),
        ]);
    }
    table.note("best of repeated runs; `identical` = same cover, pass count, and space peak");
    table.note("the multiplexed executor is the default; Sequential is the reference replay");
    table
}
