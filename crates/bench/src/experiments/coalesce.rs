//! E19 — in-flight query coalescing: K identical queries, one job.
//!
//! Not a paper artifact: this experiment measures the serving layer's
//! in-flight coalescing lever (`ServiceConfig::coalesce`). Scan
//! sharing (E17) already makes N identical concurrent queries cost one
//! query's *physical scans*; coalescing makes them cost one query's
//! *CPU* as well — duplicates of an in-flight spec attach to its job
//! as followers, the job's retirement fans one reply out per follower,
//! and the outcome cache is populated once. The headline column is the
//! **coalescing ratio** (queries per job actually run), recorded in
//! `BENCH_coalesce.json`.
//!
//! Four workloads against one planted repository:
//!
//! * **identical, coalesce on (batch)** — K copies of one spec: one
//!   job, K−1 followers, ratio K.
//! * **identical, coalesce off (batch)** — the same workload on the
//!   default config: K jobs (scan sharing still bounds the physical
//!   scans, but every job pays per-scan CPU), ratio 1.
//! * **duplicate groups (batch)** — G distinct specs × D duplicates
//!   interleaved: one job per distinct spec, ratio D.
//! * **staggered dup burst (serve)** — the head opens a fresh epoch
//!   group (the admission window holds its first scan open), the
//!   duplicates arrive while that job is in flight and coalesce
//!   mid-stream: still one job, and the followers' queue waits
//!   collapse to the window's reaction time.
//!
//! The queries / jobs / coalesced / scans / ratio columns are
//! deterministic given the seeds (the experiment asserts the
//! structural claims before tabulating them) and are what the CI perf
//! gate (`repro --check`) re-verifies; the timing columns (`… ms`,
//! `qps`) are load-dependent and excluded from the check.

use crate::{Scale, Table};
use sc_service::{QueryOutcome, QuerySpec, Service, ServiceBuilder, ServiceConfig, ServiceMetrics};
use sc_setsystem::{gen, SetSystem};
use std::time::Duration;

fn iter(seed: u64) -> QuerySpec {
    QuerySpec::IterCover { delta: 0.5, seed }
}

fn row_cells(
    workload: &str,
    queries: usize,
    scans: String,
    metrics: &ServiceMetrics,
) -> Vec<String> {
    vec![
        workload.into(),
        queries.to_string(),
        metrics.jobs.to_string(),
        metrics.coalesced.to_string(),
        scans,
        format!("{:.1}x", queries as f64 / metrics.jobs.max(1) as f64),
        format!(
            "{:.1}",
            metrics.latency.percentile(50.0).as_secs_f64() * 1e3
        ),
        format!(
            "{:.1}",
            queries as f64 / metrics.elapsed.as_secs_f64().max(1e-9)
        ),
    ]
}

fn coalescing(system: &SetSystem) -> Service {
    ServiceBuilder::new()
        .config(ServiceConfig {
            coalesce: true,
            ..Default::default()
        })
        .tenant("default", system.clone())
        .build()
}

/// Runs the four coalescing workloads and tabulates jobs, followers,
/// physical scans, and the coalescing ratio.
pub fn coalesce(scale: Scale) -> Table {
    let mut table = Table::new(
        "E19 — in-flight query coalescing: K identical queries, one job",
        &[
            "workload",
            "queries",
            "jobs",
            "coalesced",
            "scans",
            "ratio",
            "p50 ms",
            "qps",
        ],
    );
    let (n, m, k) = scale.pick((1 << 11, 1 << 10, 16), (1 << 14, 1 << 13, 32));
    let (dups, groups) = scale.pick((8, 4), (16, 4));
    let inst = gen::planted(n, m, k, 42);

    // Workload 1: K identical queries, coalescing on — one job.
    let specs = vec![iter(7); dups];
    let service = coalescing(&inst.system);
    let (outcomes, metrics) = service.run_batch(&specs);
    assert_eq!(metrics.jobs, 1, "K identical in-flight queries, one job");
    assert_eq!(metrics.coalesced, dups - 1);
    assert_eq!(metrics.physical_scans, outcomes[0].logical_passes);
    assert!(outcomes.iter().all(|o| o.cover == outcomes[0].cover));
    table.row(row_cells(
        "identical, coalesce on (batch)",
        specs.len(),
        metrics.physical_scans.to_string(),
        &metrics,
    ));

    // Workload 2: the same duplicates without coalescing — K jobs pay
    // K× the per-scan CPU even though scan sharing bounds the walks.
    let service = ServiceBuilder::new()
        .config(ServiceConfig::default())
        .tenant("default", inst.system.clone())
        .build();
    let (outcomes, metrics) = service.run_batch(&specs);
    assert_eq!(metrics.jobs, dups);
    assert_eq!(metrics.coalesced, 0);
    assert_eq!(metrics.physical_scans, outcomes[0].logical_passes);
    table.row(row_cells(
        "identical, coalesce off (batch)",
        specs.len(),
        metrics.physical_scans.to_string(),
        &metrics,
    ));

    // Workload 3: G distinct specs × D duplicates, interleaved the way
    // concurrent clients would submit them.
    let specs: Vec<QuerySpec> = (0..(groups * dups) as u64)
        .map(|i| iter(i % groups as u64))
        .collect();
    let service = coalescing(&inst.system);
    let (outcomes, metrics) = service.run_batch(&specs);
    assert_eq!(metrics.jobs, groups, "one job per distinct spec");
    assert_eq!(metrics.coalesced, groups * (dups - 1));
    let max_passes = outcomes.iter().map(|o| o.logical_passes).max().unwrap();
    assert_eq!(metrics.physical_scans, max_passes, "leaders share scans");
    table.row(row_cells(
        "duplicate groups (batch)",
        specs.len(),
        metrics.physical_scans.to_string(),
        &metrics,
    ));

    // Workload 4: staggered duplicates in serve mode — the head opens
    // a fresh epoch group (the admission window holds its first scan
    // open until company arrives), the duplicates coalesce mid-stream.
    // The leader cannot retire before the first duplicate arrives (the
    // window blocks its first scan), so the structure is deterministic
    // even though the timings are not.
    let service = ServiceBuilder::new()
        .config(ServiceConfig {
            coalesce: true,
            admission_window: Duration::from_secs(30),
            ..Default::default()
        })
        .tenant("default", inst.system.clone())
        .build();
    let (outcomes, metrics) = service.serve(|handle| {
        let head = handle.submit(iter(100)).expect("open");
        std::thread::sleep(Duration::from_millis(30));
        let rest: Vec<_> = (1..dups)
            .map(|_| handle.submit(iter(100)).expect("open"))
            .collect();
        let mut outcomes: Vec<QueryOutcome> = vec![head.wait().expect("served")];
        outcomes.extend(rest.into_iter().map(|t| t.wait().expect("served")));
        outcomes
    });
    assert_eq!(metrics.jobs, 1, "duplicates never run as their own jobs");
    assert_eq!(metrics.coalesced, dups - 1);
    assert_eq!(metrics.physical_scans, outcomes[0].logical_passes);
    assert!(outcomes.iter().all(|o| o.goal_met()));
    table.row(row_cells(
        "staggered dup burst (serve)",
        dups,
        metrics.physical_scans.to_string(),
        &metrics,
    ));

    table.note(format!(
        "planted n={n}, m={m}, k={k}; {dups} duplicates per spec, {groups} groups in workload 3"
    ));
    table.note("ratio = queries / jobs actually run (followers ride their leader's scans and CPU)");
    table.note(
        "serve burst: head submitted first, duplicates 30 ms later coalesce onto its in-flight job",
    );
    table.note("timing columns (… ms, qps) are load-dependent; repro --check skips them");
    table
}
