//! E23 — multi-tenant serving: cross-tenant admission fairness under
//! hot/cold load.
//!
//! Not a paper artifact: this experiment prices the PR 8 tenancy layer.
//! One process hosts two named repositories — a large "hot" tenant
//! flooded with multi-pass `iter` jobs and a small "cold" tenant asked
//! one query at a time — and the deficit-round-robin fairness gate must
//! keep the cold tenant's queue-wait p99 within 10× of its unloaded
//! baseline while the hot backlog is still draining. Without the gate
//! (or with a single shared lane), the cold probe would queue behind
//! the entire hot flood.
//!
//! Three rows: the cold tenant served alone (the unloaded baseline),
//! the hot tenant under its own self-inflicted flood (the contrast —
//! its waits are the backlog's), and the cold tenant probed mid-flood.
//! The deterministic columns (tenants, queries, jobs, hits) are what
//! the CI gate re-verifies; every `wait …` column is timing-dependent
//! and skipped by `repro --check` as usual. The fairness bound and the
//! non-starvation check (the hot flood had not finished when the first
//! cold answer arrived) are asserted at runtime, so a regression fails
//! the run itself, not just the table diff.

use crate::{Scale, Table};
use sc_service::{InterleaveMode, QuerySpec, ServiceBuilder};
use sc_setsystem::gen;
use std::time::Duration;

fn iter(seed: u64) -> QuerySpec {
    QuerySpec::IterCover { delta: 0.5, seed }
}

/// Millisecond percentile over a batch of queue waits (nearest-rank).
fn pctl_ms(waits: &mut [Duration], q: f64) -> f64 {
    waits.sort_unstable();
    let rank = ((waits.len() as f64 * q / 100.0).ceil() as usize).max(1);
    waits[rank.min(waits.len()) - 1].as_secs_f64() * 1e3
}

/// Queue-wait floor for the fairness ratio: below this, both sides of
/// the division are scheduler noise and the ratio is meaningless.
const FLOOR_MS: f64 = 5.0;

/// Hot/cold fairness: a flooded tenant's backlog must not leak into a
/// quiet tenant's queue waits.
pub fn tenants(scale: Scale) -> Table {
    let mut table = Table::new(
        "E23 — multi-tenant serving: cold-tenant queue wait under a hot tenant's flood",
        &[
            "workload",
            "tenants",
            "queries",
            "jobs",
            "hits",
            "wait p50 ms",
            "wait p99 ms",
            "wait blowup vs unloaded",
        ],
    );
    let (hn, hm, hk) = scale.pick((1 << 9, 1 << 10, 8), (1 << 11, 1 << 12, 16));
    let (cn, cm, ck) = scale.pick((1 << 6, 1 << 7, 4), (1 << 7, 1 << 8, 4));
    let (hot_total, hot_quota, probes) = scale.pick((24usize, 8usize, 8usize), (96, 8, 16));
    let hot_inst = gen::planted(hn, hm, hk, 7);
    let cold_inst = gen::planted(cn, cm, ck, 9);

    // Unloaded baseline: the cold repository served alone, probed one
    // query at a time from a standing start.
    // E23 pins epoch-granular granting: it is the baseline the PR 10
    // shard-interleaving experiment (E25) measures against, so its
    // numbers must keep epoch semantics even after the serve default
    // moved to `InterleaveMode::Shard`.
    let solo = ServiceBuilder::new()
        .tenant("cold", cold_inst.system.clone())
        .interleave(InterleaveMode::Epoch)
        .build();
    let (mut unloaded, _) = solo.serve(|handle| {
        (0..probes as u64)
            .map(|seed| {
                handle
                    .submit(iter(seed))
                    .expect("submit")
                    .wait()
                    .expect("answered")
                    .queue_wait
            })
            .collect::<Vec<_>>()
    });
    let unloaded_p50 = pctl_ms(&mut unloaded, 50.0);
    let unloaded_p99 = pctl_ms(&mut unloaded, 99.0);
    table.row(vec![
        "cold tenant, unloaded".into(),
        "1".into(),
        probes.to_string(),
        probes.to_string(),
        "0".into(),
        format!("{unloaded_p50:.2}"),
        format!("{unloaded_p99:.2}"),
        "1.0x".into(),
    ]);

    // The contested run: flood the hot tenant, then probe the cold one
    // while the backlog drains.
    let service = ServiceBuilder::new()
        .tenant_with_quota("hot", hot_inst.system, hot_quota)
        .tenant("cold", cold_inst.system)
        .interleave(InterleaveMode::Epoch)
        .build();
    let ((mut hot_waits, mut cold_waits, hot_done_at_first_cold), metrics) =
        service.serve(|handle| {
            let cold = handle.with_tenant("cold").expect("tenant exists");
            let hot_tickets: Vec<_> = (0..hot_total as u64)
                .map(|seed| handle.submit(iter(seed)).expect("submit hot"))
                .collect();
            let mut cold_waits = Vec::with_capacity(probes);
            let mut hot_done_at_first_cold = 0u64;
            for seed in 0..probes as u64 {
                let outcome = cold
                    .submit(iter(seed))
                    .expect("submit cold")
                    .wait()
                    .expect("cold answered");
                if seed == 0 {
                    // How much of the flood had completed when the first
                    // cold answer landed — the non-starvation witness.
                    let (completed, _, _, _, _) = handle
                        .tenants()
                        .get("hot")
                        .expect("tenant exists")
                        .meta()
                        .counters()
                        .snapshot();
                    hot_done_at_first_cold = completed;
                }
                cold_waits.push(outcome.queue_wait);
            }
            let hot_waits: Vec<_> = hot_tickets
                .into_iter()
                .map(|t| t.wait().expect("hot answered").queue_wait)
                .collect();
            (hot_waits, cold_waits, hot_done_at_first_cold)
        });
    assert_eq!(metrics.queries_completed, hot_total + probes);
    assert_eq!(metrics.jobs, hot_total + probes, "distinct seeds never hit");
    assert!(
        (hot_done_at_first_cold as usize) < hot_total,
        "the flood drained before the first cold probe returned \
         ({hot_done_at_first_cold}/{hot_total}) — the contest never happened"
    );

    let hot_p50 = pctl_ms(&mut hot_waits, 50.0);
    let hot_p99 = pctl_ms(&mut hot_waits, 99.0);
    table.row(vec![
        "hot tenant, self-flooded".into(),
        "2".into(),
        hot_total.to_string(),
        hot_total.to_string(),
        "0".into(),
        format!("{hot_p50:.2}"),
        format!("{hot_p99:.2}"),
        format!("{:.1}x", hot_p99 / unloaded_p99.max(FLOOR_MS)),
    ]);

    let cold_p50 = pctl_ms(&mut cold_waits, 50.0);
    let cold_p99 = pctl_ms(&mut cold_waits, 99.0);
    let blowup = cold_p99.max(FLOOR_MS) / unloaded_p99.max(FLOOR_MS);
    assert!(
        blowup <= 10.0,
        "cold-tenant queue-wait p99 blew up {blowup:.1}x under the hot flood \
         (cold {cold_p99:.2} ms vs unloaded {unloaded_p99:.2} ms; bound 10x)"
    );
    table.row(vec![
        "cold tenant, mid-flood".into(),
        "2".into(),
        probes.to_string(),
        probes.to_string(),
        "0".into(),
        format!("{cold_p50:.2}"),
        format!("{cold_p99:.2}"),
        format!("{blowup:.1}x"),
    ]);

    table.note(format!(
        "hot planted n={hn}, m={hm}, k={hk} (quota {hot_quota}, {hot_total} queries); \
         cold planted n={cn}, m={cm}, k={ck} ({probes} sequential probes)"
    ));
    table.note(format!(
        "runtime-asserted: cold p99 within 10x of unloaded (floored at {FLOOR_MS} ms) \
         while the flood is live — {hot_done_at_first_cold}/{hot_total} hot queries \
         had finished when the first cold answer arrived"
    ));
    table.note("every `wait …` column is timing-dependent; repro --check skips them");
    table
}
