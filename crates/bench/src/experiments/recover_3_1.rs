//! E4 — the single-pass lower bound machinery (Theorem 3.8, Figure 3.1).
//!
//! Measures the `algRecoverBit` decoder: exact recovery rate of Alice's
//! random `m × n`-bit family from disjointness answers, the query count,
//! and the Lemma 3.3 probe statistics. Successful decoding of `2^{mn}`
//! distinct inputs is precisely what pins the one-way communication —
//! and hence one-pass streaming memory (Theorem 3.8) — to Ω(mn).

use crate::table::fmt_count;
use crate::{Scale, Table};
use sc_comm::disjointness::AliceInput;
use sc_comm::recover::{probe_statistics, recover, RecoverConfig};

/// Recovery sweep over family sizes.
pub fn recover_3_1(scale: Scale) -> Table {
    let mut t = Table::new(
        "E4 / Theorem 3.8 & Figure 3.1 — decoding Alice's sets from disjointness answers",
        &[
            "m",
            "n",
            "mn bits",
            "recovered",
            "probes",
            "oracle queries",
            "collision probes",
            "P(=1 disjoint) meas.",
            "P(≥2) meas.",
        ],
    );

    let configs: Vec<(usize, usize)> = scale.pick(
        vec![(6, 32), (8, 48)],
        vec![(8, 48), (16, 64), (24, 96), (32, 128)],
    );
    for (m, n) in configs {
        let alice = AliceInput::random(n, m, 1000 + m as u64);
        assert!(alice.is_intersecting_family(), "Observation 3.4 violated");
        let out = recover(
            &alice,
            &RecoverConfig {
                seed: m as u64,
                ..Default::default()
            },
        );
        let stats = probe_statistics(&alice, 2.0, scale.pick(800, 10000), 77);
        t.row(vec![
            m.to_string(),
            n.to_string(),
            fmt_count(alice.description_bits()),
            if out.exact {
                "exact".into()
            } else {
                "FAILED".to_string()
            },
            fmt_count(out.probes),
            fmt_count(out.oracle_queries),
            out.collision_probes.to_string(),
            format!("{:.4}", stats.exactly_one as f64 / stats.trials as f64),
            format!("{:.4}", stats.two_or_more as f64 / stats.trials as f64),
        ]);
    }
    t.note("Lemma 3.3 prediction at |r_b| = 2·log₂ m: P(exactly one) ≈ m^{-1} ≫ P(≥2) ≈ m^{-2}/2");
    t.note("exact recovery of all mn bits ⇒ any one-round protocol carries Ω(mn) bits (Theorem 3.2) ⇒ one-pass streaming needs Ω(mn) memory (Theorem 3.8)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_recover_exactly() {
        let t = recover_3_1(Scale::Quick);
        assert!(t.rows.len() >= 2);
        for row in &t.rows {
            assert_eq!(row[3], "exact", "{row:?}");
        }
        // Collision probability column is far below the solo column.
        for row in &t.rows {
            let p1: f64 = row[7].parse().unwrap();
            let p2: f64 = row[8].parse().unwrap();
            assert!(p1 > p2, "{row:?}");
        }
    }
}
