//! E7 — Theorem 5.4 / Corollary 5.8: the multi-pass lower-bound
//! reduction, verified exactly.
//!
//! For random ISC instances the reduced Set Cover instance is solved by
//! the certified exact solver and the optimum compared with the
//! Corollary 5.8 threshold; the Lemma 5.6 witness cover cross-checks
//! the YES direction constructively.

use crate::table::fmt_count;
use crate::{Scale, Table};
use sc_comm::chasing::IntersectionSetChasing;
use sc_comm::reduction_sec5::{
    lemma_5_6_witness, reduce, streaming_to_communication_bits, verify_corollary_5_8,
};

/// Verifies the reduction over a batch of random ISC instances.
pub fn reduction_5_4(scale: Scale) -> Table {
    let mut t = Table::new(
        "E7 / Theorem 5.4 & Corollary 5.8 — ISC → Set Cover reduction, exact verification",
        &[
            "n",
            "p",
            "|U|",
            "|F|",
            "instances",
            "YES (opt = (2p+1)n+1)",
            "NO (opt = +2)",
            "iff holds",
            "witness ok",
        ],
    );

    let configs: Vec<(usize, usize, usize)> = scale.pick(
        vec![(4, 2, 4), (5, 2, 2)],
        vec![(4, 2, 30), (5, 2, 20), (6, 2, 15), (4, 3, 10)],
    );
    for (n, p, trials) in configs {
        let mut yes = 0usize;
        let mut no = 0usize;
        let mut holds = 0usize;
        let mut witness_ok = 0usize;
        let mut shape = (0usize, 0usize);
        for seed in 0..trials as u64 {
            let isc = IntersectionSetChasing::random(n, p, 2, 1000 * p as u64 + seed);
            let red = reduce(&isc);
            shape = (red.system.universe(), red.system.num_sets());
            let v = verify_corollary_5_8(&isc, 50_000_000);
            if v.holds {
                holds += 1;
            }
            if v.isc_output {
                yes += 1;
                if let Some(w) = lemma_5_6_witness(&isc) {
                    if red.system.verify_cover(&w).is_ok() && w.len() == v.yes_size {
                        witness_ok += 1;
                    }
                }
            } else {
                no += 1;
            }
        }
        t.row(vec![
            n.to_string(),
            p.to_string(),
            shape.0.to_string(),
            shape.1.to_string(),
            trials.to_string(),
            yes.to_string(),
            no.to_string(),
            format!("{holds}/{trials}"),
            format!("{witness_ok}/{yes}"),
        ]);
    }
    t.note(format!(
        "context: a (1/2δ−1)-pass exact streaming algorithm with s words would solve ISC with {} bits at s=1000, ℓ=3 (Observation 5.9), contradicting the [GO13] bound Ω(n^{{1+1/(2p)}}/p^{{16}}·log^{{3/2}}n)",
        fmt_count(streaming_to_communication_bits(1000, 3))
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iff_holds_on_every_instance() {
        let t = reduction_5_4(Scale::Quick);
        for row in &t.rows {
            let parts: Vec<&str> = row[7].split('/').collect();
            assert_eq!(parts[0], parts[1], "Corollary 5.8 failed: {row:?}");
            let w: Vec<&str> = row[8].split('/').collect();
            assert_eq!(w[0], w[1], "witness check failed: {row:?}");
        }
    }
}
