//! E24 — the event-driven front door: connection soak, overload
//! shedding, and flat memory under 4× the connection limit.
//!
//! Not a paper artifact: this experiment prices the PR 9 session
//! layer. One poller thread multiplexes every TCP connection; the
//! closed-loop overload run drives waves of connections at 4× the
//! configured `max_conns` and checks the three promises the redesign
//! makes:
//!
//! * **Excess load is shed explicitly** — every connection over the
//!   limit is answered `err msg=busy` and closed, never silently
//!   queued. The wave protocol makes the split deterministic: all of
//!   a wave's connections are held open until every one of them has
//!   its verdict, so exactly `max_conns` are accepted and exactly the
//!   rest are shed, wave after wave.
//! * **Accepted queries stay fast** — the p99 latency of queries on
//!   accepted connections stays within 10× of the unloaded
//!   single-connection baseline (both sides floored at scheduler
//!   noise), asserted at runtime.
//! * **Memory stays flat** — resident set (VmRSS) growth across the
//!   whole soak stays bounded: per-session buffers are capped and
//!   sessions are reclaimed, so thousands of connections cannot
//!   accumulate into process growth.
//!
//! The deterministic columns (conns, max conns, accepted, shed, ok,
//! busy) are what the CI gate re-verifies; every `lat …` column is
//! timing-dependent and skipped by `repro --check` as usual.

use crate::{Scale, Table};
use sc_service::net::{serve_tcp_with, NetConfig, NetStats};
use sc_service::{ServiceBuilder, ServiceMetrics};
use sc_setsystem::gen;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Latency floor for the blowup ratio: below this, both sides of the
/// division are scheduler noise and the ratio is meaningless.
const FLOOR_MS: f64 = 5.0;

/// Millisecond percentile over a batch of latencies (nearest-rank).
fn pctl_ms(lats: &mut [Duration], q: f64) -> f64 {
    lats.sort_unstable();
    let rank = ((lats.len() as f64 * q / 100.0).ceil() as usize).max(1);
    lats[rank.min(lats.len()) - 1].as_secs_f64() * 1e3
}

/// Resident set size in kiB from `/proc/self/status`, `None` off
/// Linux (the memory-flatness assert degrades to a note).
fn rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Serves a fresh instance over TCP; returns the address and a join
/// handle yielding the run's accounting.
fn spawn_server(cfg: NetConfig) -> (String, std::thread::JoinHandle<(ServiceMetrics, NetStats)>) {
    let inst = gen::planted(256, 512, 8, 13);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || {
        let service = ServiceBuilder::new().tenant("default", inst.system).build();
        serve_tcp_with(&service, listener, cfg).expect("serve")
    });
    (addr, handle)
}

/// One request line in, one reply line out, timed.
fn timed_query(
    reader: &mut BufReader<TcpStream>,
    writer: &mut &TcpStream,
    line: &str,
) -> (String, Duration) {
    let start = Instant::now();
    writeln!(writer, "{line}").expect("write");
    writer.flush().expect("flush");
    let mut reply = String::new();
    let n = reader.read_line(&mut reply).expect("read");
    assert!(n > 0, "connection died answering {line:?}");
    (reply.trim_end().to_string(), start.elapsed())
}

fn connect(addr: &str) -> (BufReader<TcpStream>, TcpStream) {
    let conn = TcpStream::connect(addr).expect("connect");
    let reader = BufReader::new(conn.try_clone().expect("clone"));
    (reader, conn)
}

fn shutdown_server(
    addr: &str,
    server: std::thread::JoinHandle<(ServiceMetrics, NetStats)>,
) -> (ServiceMetrics, NetStats) {
    let (_reader, conn) = connect(addr);
    (&conn).write_all(b"shutdown\n").expect("shutdown");
    server.join().expect("server thread")
}

/// One overload wave: `conns` simultaneous connections against a
/// `max_conns` server. Every connection pings and holds until the
/// whole wave has its verdict (so the accepted/shed split is exact),
/// then the accepted ones each run `queries_per_conn` sequential
/// queries and quit. Returns (accepted, shed, ok, latencies).
fn overload_wave(
    addr: &str,
    conns: usize,
    queries_per_conn: usize,
    wave: usize,
) -> (usize, usize, usize, Vec<Duration>) {
    // (verdicts delivered, accepted so far) + the release signal.
    let gate = (Mutex::new(0usize), Condvar::new());
    let results = Mutex::new((0usize, 0usize, 0usize, Vec::new()));
    std::thread::scope(|s| {
        for c in 0..conns {
            let (gate, results) = (&gate, &results);
            s.spawn(move || {
                let (mut reader, conn) = connect(addr);
                let mut writer = &conn;
                writeln!(writer, "ping").expect("write ping");
                writer.flush().expect("flush ping");
                let mut verdict = String::new();
                reader.read_line(&mut verdict).expect("read verdict");
                let accepted = match verdict.trim_end() {
                    "pong" => true,
                    "err msg=busy" => false,
                    other => panic!("unexpected verdict {other:?}"),
                };
                {
                    let mut delivered = gate.0.lock().expect("gate");
                    *delivered += 1;
                    gate.1.notify_all();
                }
                if !accepted {
                    let mut res = results.lock().expect("results");
                    res.1 += 1;
                    return;
                }
                // Hold the slot until the whole wave has its verdict —
                // this is what makes the shed count exact.
                {
                    let mut delivered = gate.0.lock().expect("gate");
                    while *delivered < conns {
                        delivered = gate.1.wait(delivered).expect("gate wait");
                    }
                }
                let mut lats = Vec::with_capacity(queries_per_conn);
                let mut ok = 0usize;
                for q in 0..queries_per_conn {
                    let seed = (wave * conns + c * queries_per_conn + q) as u64;
                    let (reply, lat) = timed_query(
                        &mut reader,
                        &mut writer,
                        &format!("iter delta=0.5 seed={seed}"),
                    );
                    assert!(reply.starts_with("ok id="), "query reply {reply:?}");
                    ok += 1;
                    lats.push(lat);
                }
                writeln!(writer, "quit").expect("write quit");
                writer.flush().expect("flush quit");
                // Wait for the server to finish the close; once EOF is
                // seen the session slot is already reclaimed, so the
                // next wave's accept counts stay exact.
                let mut rest = String::new();
                while reader.read_line(&mut rest).expect("drain") > 0 {
                    rest.clear();
                }
                let mut res = results.lock().expect("results");
                res.0 += 1;
                res.2 += ok;
                res.3.extend(lats);
            });
        }
    });
    results.into_inner().expect("results")
}

/// The event-driven front door under a 4× connection overload.
pub fn netload(scale: Scale) -> Table {
    let mut table = Table::new(
        "E24 — event-driven front door: accepted/shed split and latency under 4x connection overload",
        &[
            "workload",
            "conns",
            "max conns",
            "accepted",
            "shed",
            "ok",
            "busy",
            "lat p50 ms",
            "lat p99 ms",
        ],
    );
    let max_conns = scale.pick(8usize, 64);
    let (waves, wave_conns, queries_per_conn) = scale.pick((2usize, 32usize, 2usize), (40, 256, 2));
    let probes = scale.pick(16usize, 64);

    // Row 1 — unloaded baseline: one connection, sequential queries.
    let (addr, server) = spawn_server(NetConfig::default());
    let (mut reader, conn) = connect(&addr);
    let mut writer = &conn;
    let mut unloaded = Vec::with_capacity(probes);
    for seed in 0..probes {
        let (reply, lat) = timed_query(
            &mut reader,
            &mut writer,
            &format!("iter delta=0.5 seed={seed}"),
        );
        assert!(reply.starts_with("ok id="), "unloaded reply {reply:?}");
        unloaded.push(lat);
    }
    drop((reader, conn));
    let (metrics, stats) = shutdown_server(&addr, server);
    assert_eq!(metrics.queries_completed, probes);
    assert_eq!(stats.shed, 0);
    let unloaded_p50 = pctl_ms(&mut unloaded, 50.0);
    let unloaded_p99 = pctl_ms(&mut unloaded, 99.0);
    table.row(vec![
        "unloaded".into(),
        "1".into(),
        NetConfig::default().max_conns.to_string(),
        "1".into(),
        "0".into(),
        probes.to_string(),
        "0".into(),
        format!("{unloaded_p50:.2}"),
        format!("{unloaded_p99:.2}"),
    ]);

    // Row 2 — nominal load: a wave at half the limit sheds nothing.
    let nominal_conns = max_conns / 2;
    let cfg = NetConfig {
        max_conns,
        ..NetConfig::default()
    };
    let (addr, server) = spawn_server(cfg);
    let (accepted, shed, ok, mut nominal_lats) =
        overload_wave(&addr, nominal_conns, queries_per_conn, 0);
    let (metrics, stats) = shutdown_server(&addr, server);
    assert_eq!((accepted, shed), (nominal_conns, 0));
    assert_eq!(stats.shed, 0, "nominal load must not shed");
    assert_eq!(metrics.queries_completed, ok);
    let nominal_p50 = pctl_ms(&mut nominal_lats, 50.0);
    let nominal_p99 = pctl_ms(&mut nominal_lats, 99.0);
    table.row(vec![
        "nominal, under the limit".into(),
        nominal_conns.to_string(),
        max_conns.to_string(),
        accepted.to_string(),
        "0".into(),
        ok.to_string(),
        "0".into(),
        format!("{nominal_p50:.2}"),
        format!("{nominal_p99:.2}"),
    ]);

    // Row 3 — closed-loop overload: waves of connections at 4× the
    // limit, repeated until thousands of connections have passed
    // through one poller thread.
    let rss_before = rss_kib();
    let (addr, server) = spawn_server(cfg);
    let (mut accepted, mut shed, mut ok) = (0usize, 0usize, 0usize);
    let mut lats = Vec::new();
    for wave in 0..waves {
        let (a, s, o, l) = overload_wave(&addr, wave_conns, queries_per_conn, wave);
        assert_eq!(
            (a, s),
            (max_conns, wave_conns - max_conns),
            "wave {wave}: the accepted/shed split drifted"
        );
        accepted += a;
        shed += s;
        ok += o;
        lats.extend(l);
    }
    let (metrics, stats) = shutdown_server(&addr, server);
    let rss_after = rss_kib();
    assert_eq!(
        stats.accepted,
        accepted as u64 + 1,
        "waves + the shutdown probe"
    );
    assert_eq!(stats.shed, shed as u64);
    assert!(stats.shed > 0, "the overload never shed — not an overload");
    assert_eq!(metrics.queries_completed, ok);
    let p50 = pctl_ms(&mut lats, 50.0);
    let p99 = pctl_ms(&mut lats, 99.0);
    let blowup = p99.max(FLOOR_MS) / unloaded_p99.max(FLOOR_MS);
    assert!(
        blowup <= 10.0,
        "accepted-query p99 blew up {blowup:.1}x under overload \
         ({p99:.2} ms vs unloaded {unloaded_p99:.2} ms; bound 10x)"
    );
    table.row(vec![
        format!("overload, {waves} waves at 4x"),
        (waves * wave_conns).to_string(),
        max_conns.to_string(),
        accepted.to_string(),
        shed.to_string(),
        ok.to_string(),
        "0".into(),
        format!("{p50:.2}"),
        format!("{p99:.2}"),
    ]);

    table.note(format!(
        "planted n=256, m=512, k=8; {waves} waves x {wave_conns} conns against max_conns={max_conns}, \
         {queries_per_conn} sequential queries per accepted connection \
         ({} connections total through one poller thread)",
        waves * wave_conns
    ));
    table.note(format!(
        "runtime-asserted: exact accepted/shed split every wave, shed > 0, \
         accepted-query p99 within 10x of unloaded (floored at {FLOOR_MS} ms) — \
         blowup {blowup:.1}x"
    ));
    match (rss_before, rss_after) {
        (Some(before), Some(after)) => {
            let growth_kib = after.saturating_sub(before);
            assert!(
                growth_kib < 64 * 1024,
                "resident set grew {growth_kib} kiB across the soak (bound 64 MiB)"
            );
            table.note(format!(
                "runtime-asserted: flat memory — VmRSS {before} kiB before, {after} kiB after \
                 the soak ({growth_kib} kiB growth; bound 64 MiB)"
            ));
        }
        _ => table.note("VmRSS unavailable on this platform; memory-flatness assert skipped"),
    }
    table.note("every `lat …` column is timing-dependent; repro --check skips them");
    table
}
