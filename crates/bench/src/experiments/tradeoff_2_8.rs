//! E2 — the Theorem 2.8 trade-off: `2/δ` passes against `Õ(mn^δ)`
//! space, swept over δ and n.
//!
//! The check is the *shape*: for fixed δ, the measured peak space
//! divided by `m·n^δ` should stay roughly flat as `n` grows (the Õ(·)
//! constant), while passes stay pinned at `2/δ (+1 cleanup)`; smaller δ
//! should trade more passes for less space on the same instance.

use crate::table::{fmt_count, fmt_ratio};
use crate::{Scale, Table};
use sc_core::{IterSetCover, IterSetCoverConfig};
use sc_setsystem::gen;
use sc_stream::run_reported;

/// Sweeps δ × n and reports the normalised space.
pub fn tradeoff_2_8(scale: Scale) -> Table {
    let deltas = [1.0, 0.5, 1.0 / 3.0, 0.25];
    let ns: Vec<usize> = scale.pick(vec![256, 512], vec![512, 1024, 2048, 4096]);

    let mut t = Table::new(
        "E2 / Theorem 2.8 — pass/space trade-off of iterSetCover",
        &[
            "δ",
            "n",
            "m",
            "passes",
            "2/δ+1",
            "space (words)",
            "space / (m·n^δ)",
            "ratio",
        ],
    );

    for &delta in &deltas {
        for &n in &ns {
            let m = 2 * n;
            let k = 16.min(n / 8).max(2);
            let inst = gen::planted(n, m, k, 7 + n as u64);
            let opt = inst.planted.as_ref().unwrap().len();
            let mut alg = IterSetCover::new(IterSetCoverConfig {
                delta,
                ..Default::default()
            });
            let r = run_reported(&mut alg, &inst.system);
            assert!(r.verified.is_ok(), "δ={delta} n={n}: {:?}", r.verified);
            let budget = 2.0 / delta + 1.0;
            let unit = m as f64 * (n as f64).powf(delta);
            t.row(vec![
                format!("{delta:.3}"),
                n.to_string(),
                m.to_string(),
                r.passes.to_string(),
                format!("{budget:.0}"),
                fmt_count(r.space_words),
                format!("{:.3}", r.space_per(unit)),
                fmt_ratio(r.ratio(opt)),
            ]);
        }
    }
    t.note("space / (m·n^δ) flat across n for fixed δ ⇒ the Õ(mn^δ) shape holds");
    t.note("space is summed across the log n parallel guesses of k, as in Lemma 2.2");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_respect_budget_and_space_grows_with_delta() {
        let t = tradeoff_2_8(Scale::Quick);
        for row in &t.rows {
            let passes: usize = row[3].parse().unwrap();
            let budget: f64 = row[4].parse().unwrap();
            assert!(passes as f64 <= budget, "{row:?}");
        }
        // At fixed n, δ=1 must use at least as much space as δ=1/4
        // (larger samples, bigger projections).
        let space = |row: &Vec<String>| row[5].replace(',', "").parse::<usize>().unwrap();
        let d1: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0] == "1.000").collect();
        let d4: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0] == "0.250").collect();
        assert!(
            space(d1[0]) >= space(d4[0]),
            "{} vs {}",
            space(d1[0]),
            space(d4[0])
        );
    }
}
