//! E9 — the Θ̃(n)-space regime rows: \[ER14\] one pass at `O(√n)` and
//! \[CW16\] `p` passes at `(p+1)·n^{1/(p+1)}`.
//!
//! The measured check: as `p` grows, the measured approximation ratio of
//! the descending-threshold algorithm falls with the analytic guarantee
//! curve, and the one-pass algorithm sits in the √n band.

use crate::table::{fmt_count, fmt_ratio};
use crate::{Scale, Table};
use sc_core::baselines::{ChakrabartiWirth, EmekRosen};
use sc_setsystem::gen;
use sc_stream::run_reported;

/// Sweeps the pass budget p.
pub fn semi_streaming(scale: Scale) -> Table {
    let n = scale.pick(512, 4096);
    let m = n / 2;
    // k = 10 keeps the planted set size off the n/β^j threshold grid
    // (β is a power of two for these n), avoiding boundary artifacts.
    let k = 10;
    let seeds: Vec<u64> = scale.pick(vec![1, 2], vec![1, 2, 3, 4, 5]);

    let mut t = Table::new(
        format!("E9 / [ER14] & [CW16] — Θ̃(n)-space algorithms on planted(n={n}, m={m}, k={k})"),
        &[
            "algorithm",
            "p",
            "analytic approx bound",
            "mean ratio",
            "max passes",
            "max space (words)",
        ],
    );

    // ER14 row.
    let mut ratios = Vec::new();
    let mut passes = 0usize;
    let mut space = 0usize;
    for &seed in &seeds {
        let inst = gen::planted(n, m, k, seed);
        let opt = inst.planted.as_ref().unwrap().len();
        let r = run_reported(&mut EmekRosen, &inst.system);
        assert!(r.verified.is_ok());
        ratios.push(r.ratio(opt));
        passes = passes.max(r.passes);
        space = space.max(r.space_words);
    }
    t.row(vec![
        "emek-rosen [ER14]".into(),
        "1".into(),
        format!("O(√n) = O({:.0})", (n as f64).sqrt()),
        fmt_ratio(mean(&ratios)),
        passes.to_string(),
        fmt_count(space),
    ]);

    // CW16 rows for growing p.
    for p in 1..=5usize {
        let alg_template = ChakrabartiWirth::new(p);
        let mut ratios = Vec::new();
        let mut max_passes = 0usize;
        let mut max_space = 0usize;
        for &seed in &seeds {
            let inst = gen::planted(n, m, k, seed);
            let opt = inst.planted.as_ref().unwrap().len();
            let r = run_reported(&mut ChakrabartiWirth::new(p), &inst.system);
            assert!(r.verified.is_ok());
            ratios.push(r.ratio(opt));
            max_passes = max_passes.max(r.passes);
            max_space = max_space.max(r.space_words);
        }
        t.row(vec![
            "chakrabarti-wirth [CW16]".into(),
            p.to_string(),
            format!("(p+1)·n^{{1/(p+1)}} = {:.1}", alg_template.guarantee(n)),
            fmt_ratio(mean(&ratios)),
            max_passes.to_string(),
            fmt_count(max_space),
        ]);
    }
    t.note("measured ratios sit far below the worst-case guarantees on random instances; the guarantee column shows the analytic trade-off curve the passes buy");
    t
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_passes_never_hurt_much() {
        let t = semi_streaming(Scale::Quick);
        assert_eq!(t.rows.len(), 6);
        let ratio = |i: usize| t.rows[i][3].parse::<f64>().unwrap();
        // CW16 at p=5 should be at least as good as p=1 on average.
        assert!(
            ratio(5) <= ratio(1) + 0.25,
            "p=5 {} vs p=1 {}",
            ratio(5),
            ratio(1)
        );
        // All algorithms stay within the analytic band by a wide margin.
        for i in 0..t.rows.len() {
            assert!(ratio(i) < 40.0);
        }
    }
}
