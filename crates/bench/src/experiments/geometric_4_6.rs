//! E6 — Theorem 4.6: `algGeomSC` over discs, rectangles, and fat
//! triangles in `Õ(n)` space and `O(1)` passes.

use crate::table::{fmt_count, fmt_ratio};
use crate::{Scale, Table};
use sc_geometry::{instances, AlgGeomSc, AlgGeomScConfig, GeomInstance};

/// Runs `algGeomSC` across the three shape families and sizes.
pub fn geometric_4_6(scale: Scale) -> Table {
    let ns: Vec<usize> = scale.pick(vec![256], vec![256, 512, 1024, 2048]);
    let mut t = Table::new(
        "E6 / Theorem 4.6 — algGeomSC on discs / rectangles / fat triangles (δ = 1/4)",
        &[
            "family",
            "n",
            "m",
            "|sol|",
            "ratio",
            "passes",
            "space (words)",
            "space / n",
            "max store",
        ],
    );

    type Maker = fn(usize, usize, usize, u64) -> GeomInstance;
    let families: Vec<(&str, Maker)> = vec![
        ("discs", instances::random_discs),
        ("rects", instances::random_rects),
        ("fat-triangles", instances::random_fat_triangles),
    ];
    for (name, make) in families {
        for &n in &ns {
            let m = n / 2;
            let k = 8;
            let inst = make(n, m, k, 11 + n as u64);
            let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
            let r = alg.run(&inst);
            assert!(r.verified.is_ok(), "{name} n={n}: {:?}", r.verified);
            let opt = inst.planted.as_ref().unwrap().len();
            t.row(vec![
                name.to_string(),
                n.to_string(),
                m.to_string(),
                r.cover_size().to_string(),
                fmt_ratio(r.cover_size() as f64 / opt as f64),
                r.passes.to_string(),
                fmt_count(r.space_words),
                fmt_ratio(r.space_words as f64 / n as f64),
                fmt_count(r.max_store_candidates),
            ]);
        }
    }
    // Spatially skewed workloads: Gaussian clusters (shallow crescent
    // decoys) and a jittered lattice (duplicate projections).
    for &n in &ns {
        let m = n / 2;
        for (name, inst) in [
            (
                "clustered-discs",
                instances::clustered_discs(n, m, 8, 23 + n as u64),
            ),
            ("grid-rects", instances::grid_rects(n, m, 23 + n as u64)),
        ] {
            let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
            let r = alg.run(&inst);
            assert!(r.verified.is_ok(), "{name} n={n}: {:?}", r.verified);
            let opt = inst.planted.as_ref().unwrap().len();
            t.row(vec![
                name.to_string(),
                n.to_string(),
                m.to_string(),
                r.cover_size().to_string(),
                fmt_ratio(r.cover_size() as f64 / opt as f64),
                r.passes.to_string(),
                fmt_count(r.space_words),
                fmt_ratio(r.space_words as f64 / n as f64),
                fmt_count(r.max_store_candidates),
            ]);
        }
    }
    // The adversarial instance: m = Θ(n²) shapes.
    for half in scale.pick(vec![32usize], vec![48, 96]) {
        let inst = instances::two_line(half, None, 5);
        let n = inst.points.len();
        let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
        let r = alg.run(&inst);
        assert!(r.verified.is_ok(), "two_line: {:?}", r.verified);
        t.row(vec![
            "two-line (Fig 1.2)".into(),
            n.to_string(),
            inst.shapes.len().to_string(),
            r.cover_size().to_string(),
            fmt_ratio(r.cover_size() as f64 / half as f64),
            r.passes.to_string(),
            fmt_count(r.space_words),
            fmt_ratio(r.space_words as f64 / n as f64),
            fmt_count(r.max_store_candidates),
        ]);
    }
    t.note("passes stay O(1) (≤ 3·4+1 per guess, parallel-accounted) and space/n stays bounded while m grows up to Θ(n²)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_passes_and_linearish_space() {
        let t = geometric_4_6(Scale::Quick);
        for row in &t.rows {
            let passes: usize = row[5].parse().unwrap();
            assert!(passes <= 13, "{row:?}");
        }
        // space/n bounded across the sweep (generous constant for the
        // polylog factors and parallel guess-summing).
        for row in &t.rows {
            let per_n: f64 = row[7].parse().unwrap();
            assert!(per_n < 64.0, "{row:?}");
        }
    }
}
