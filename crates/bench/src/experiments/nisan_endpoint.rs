//! E10 — the Nisan endpoint of the trade-off curve: δ = Θ(1/log n).
//!
//! Theorem 2.8's closing argument: with `δ = c/log n` and the exact
//! oracle (ρ = 1), `iterSetCover` becomes a `(log n / 2)`-approximation
//! in `O(log n)` passes using `Õ(m)` space — matching Nisan's Ω̃(m)
//! lower bound up to polylogs. The sweep checks that `space/m` stays
//! polylog-bounded while the ratio stays `O(log n)`.

use crate::table::{fmt_count, fmt_ratio};
use crate::{Scale, Table};
use sc_core::{IterSetCover, IterSetCoverConfig};
use sc_offline::OfflineSolver;
use sc_setsystem::gen;
use sc_stream::run_reported;

/// Sweeps n at δ = 1/log₂ n.
pub fn nisan_endpoint(scale: Scale) -> Table {
    let ns: Vec<usize> = scale.pick(vec![256, 512], vec![256, 512, 1024, 2048]);
    let mut t = Table::new(
        "E10 / Nisan endpoint — iterSetCover at δ = 1/log₂ n with ρ = 1",
        &[
            "n",
            "m",
            "δ",
            "passes",
            "ratio",
            "log₂ n",
            "space (words)",
            "space / m",
        ],
    );
    for &n in &ns {
        let m = 2 * n;
        let k = 8;
        let delta = 1.0 / (n as f64).log2();
        let inst = gen::planted(n, m, k, 5 + n as u64);
        let opt = inst.planted.as_ref().unwrap().len();
        let mut alg = IterSetCover::new(IterSetCoverConfig {
            delta,
            solver: OfflineSolver::DEFAULT_EXACT,
            ..Default::default()
        });
        let r = run_reported(&mut alg, &inst.system);
        assert!(r.verified.is_ok(), "n={n}: {:?}", r.verified);
        t.row(vec![
            n.to_string(),
            m.to_string(),
            format!("{delta:.3}"),
            r.passes.to_string(),
            fmt_ratio(r.ratio(opt)),
            format!("{:.1}", (n as f64).log2()),
            fmt_count(r.space_words),
            fmt_ratio(r.space_words as f64 / m as f64),
        ]);
    }
    t.note("at this endpoint n^δ = 2, so the per-iteration sample is O(k) and total space is Õ(m) — the regime where Theorem 2.8 matches [Nis02]'s Ω̃(m)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_stays_logarithmic_and_space_near_linear_in_m() {
        let t = nisan_endpoint(Scale::Quick);
        for row in &t.rows {
            let ratio: f64 = row[4].parse().unwrap();
            let log_n: f64 = row[5].parse().unwrap();
            assert!(ratio <= log_n, "{row:?}");
            let per_m: f64 = row[7].parse().unwrap();
            assert!(per_m < 32.0, "space/m too big: {row:?}");
        }
    }
}
