//! E21 — vectorized bitset kernels + bucket-queue greedy oracle.
//!
//! Not a paper artifact: this experiment tracks the two perf levers of
//! PR 6 and pins their observational equivalence in the same breath.
//!
//! * **Kernel rows** A/B the dispatched bitset kernels against the
//!   forced-scalar path via [`kernels::force_scalar`] — same entry
//!   points, same inputs, one process — over dense, half-dense, and
//!   sparse sorted slices plus whole-word set algebra. On an AVX2
//!   machine the dispatched side runs the 256-bit paths; elsewhere both
//!   sides are scalar and the speedup column reads ~1x. The
//!   `intersect_into` rows instead use the classic per-candidate probe
//!   loop as base, since the emit kernel is shared by both backends.
//! * **Oracle rows** time the gain-indexed bucket-queue greedy
//!   ([`greedy_slices`]) against the retained `BinaryHeap` reference
//!   ([`greedy_slices_heap`]) on planted instances, asserting the
//!   covers are bit-identical.
//! * **End-to-end row** runs `iterSetCover` under both kernel
//!   backends and asserts cover, passes, and space all match.
//!
//! The `workload` / `size` / `identical` columns are deterministic and
//! CI-gated (`repro --check BENCH_kernels.json`); the timing columns
//! (`… ms`, `speedup`) are machine-dependent and skipped by the gate.
//! The acceptance bar recorded in EXPERIMENTS.md is a ≥ 2× kernel
//! speedup on dense slices on an AVX2 host.

use crate::{Scale, Table};
use sc_bitset::kernels;
use sc_core::{IterSetCover, IterSetCoverConfig};
use sc_offline::{greedy_slices, greedy_slices_heap};
use sc_setsystem::gen;
use sc_stream::run_reported;
use std::hint::black_box;
use std::time::Instant;

/// Minimum wall-clock of `repeats` timed runs of `f`, in seconds.
fn best_secs<T>(repeats: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..repeats {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Times `f` once forced-scalar and once dispatched, returning
/// `(scalar secs, dispatched secs)`. The dispatched side runs first so
/// a panic inside `f` cannot leave the process pinned to scalar.
fn ab<T>(repeats: usize, mut f: impl FnMut() -> T) -> (f64, f64) {
    let dispatched = best_secs(repeats, &mut f);
    kernels::force_scalar(true);
    let scalar = best_secs(repeats, &mut f);
    kernels::force_scalar(false);
    (scalar, dispatched)
}

fn timed_row(
    table: &mut Table,
    workload: &str,
    size: String,
    scalar: f64,
    opt: f64,
    identical: bool,
) {
    table.row(vec![
        workload.into(),
        size,
        format!("{:.2}", scalar * 1e3),
        format!("{:.2}", opt * 1e3),
        format!("{:.2}x", scalar / opt.max(1e-12)),
        identical.to_string(),
    ]);
}

/// Sorted ids over `words * 64` bits taking every `stride`-th element.
fn strided_ids(words: usize, stride: u32) -> Vec<u32> {
    (0..(words * 64) as u32).step_by(stride as usize).collect()
}

/// Deterministic pseudo-random word fill (splitmix64).
fn noise_words(len: usize, mut seed: u64) -> Vec<u64> {
    (0..len)
        .map(|_| {
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
        .collect()
}

/// Benchmarks the kernel dispatch and the bucket-queue oracle, pinning
/// both against their reference paths.
pub fn kernels(scale: Scale) -> Table {
    let mut table = Table::new(
        "E21 — vectorized bitset kernels + bucket-queue greedy oracle",
        &[
            "workload",
            "size",
            "base ms",
            "opt ms",
            "speedup",
            "identical",
        ],
    );
    let words = scale.pick(1 << 10, 1 << 14); // 64 Kbit / 1 Mbit bitmaps
    let repeats = scale.pick(3, 20);
    let a = noise_words(words, 1);
    let b = noise_words(words, 2);

    // Whole-word algebra: the intersection-count inner loop of the
    // dense greedy and the multiplexer's residual updates.
    let (s, d) = ab(repeats, || kernels::and_popcount(&a, &b));
    kernels::force_scalar(true);
    let scalar_count = kernels::and_popcount(&a, &b);
    kernels::force_scalar(false);
    let identical = kernels::and_popcount(&a, &b) == scalar_count;
    timed_row(
        &mut table,
        "and_popcount words",
        format!("{words} w"),
        s,
        d,
        identical,
    );

    // Sorted-slice counting at three densities: stride 1 saturates the
    // mask fragments (vector popcount per 4 words), stride 2 still
    // rides the fragment path, stride 64 is one bit per word — the
    // sparse regime where the fragment splitter degrades to scalar.
    for (label, stride) in [("dense", 1u32), ("half", 2), ("sparse", 64)] {
        let ids = strided_ids(words, stride);
        let (s, d) = ab(repeats, || kernels::intersection_count_sorted(&a, &ids));
        kernels::force_scalar(true);
        let want = kernels::intersection_count_sorted(&a, &ids);
        kernels::force_scalar(false);
        let identical = kernels::intersection_count_sorted(&a, &ids) == want;
        timed_row(
            &mut table,
            &format!("count_sorted {label}"),
            format!("{} ids", ids.len()),
            s,
            d,
            identical,
        );
    }

    // Filtering emit (the projection builder's hot loop): base is the
    // classic per-candidate probe loop, opt the span walk that emits
    // ids straight from `word & mask` bits — the membership probes
    // vanish for everything the splitter classifies as a span. (The
    // walk is shared by both backends; a `vpgatherqq` probe was tried
    // for the AVX2 side and measured slower, see kernels.rs.)
    for (label, stride) in [("dense", 1u32), ("third", 3)] {
        let ids = strided_ids(words, stride);
        let mut out = Vec::with_capacity(ids.len());
        let probe = best_secs(repeats, || {
            out.clear();
            for &e in &ids {
                if a[(e >> 6) as usize] >> (e & 63) & 1 == 1 {
                    out.push(e);
                }
            }
            out.len()
        });
        let want = std::mem::take(&mut out);
        let kernel = best_secs(repeats, || {
            kernels::intersect_sorted_into(&a, &ids, &mut out);
            out.len()
        });
        kernels::intersect_sorted_into(&a, &ids, &mut out);
        timed_row(
            &mut table,
            &format!("intersect_into {label}"),
            format!("{} ids", ids.len()),
            probe,
            kernel,
            out == want,
        );
    }

    // Batched clear: uncovered-set maintenance after a greedy pick.
    let ids = strided_ids(words, 2);
    let mut scratch = vec![0u64; words];
    let (s, d) = ab(repeats, || {
        scratch.copy_from_slice(&a);
        kernels::remove_sorted(&mut scratch, &ids);
        scratch[0]
    });
    let mut got = a.clone();
    kernels::remove_sorted(&mut got, &ids);
    kernels::force_scalar(true);
    let mut want = a.clone();
    kernels::remove_sorted(&mut want, &ids);
    kernels::force_scalar(false);
    timed_row(
        &mut table,
        "remove_sorted half",
        format!("{} ids", ids.len()),
        s,
        d,
        got == want,
    );

    // Oracle rows: bucket queue vs the retained heap on the stored
    // projections of planted instances (the shape `iterSetCover` and
    // the geometric solver actually feed the oracle).
    let oracle_grid: Vec<(usize, usize, usize)> = match scale {
        Scale::Quick => vec![(1 << 10, 1 << 9, 8)],
        Scale::Full => vec![(1 << 14, 1 << 12, 32), (1 << 15, 1 << 13, 32)],
    };
    for (n, m, k) in oracle_grid {
        let inst = gen::planted(n, m, k, 42);
        let sys = &inst.system;
        let target = sc_bitset::BitSet::full(n);
        let get = |i: usize| sys.set(i as u32);
        let heap = best_secs(repeats, || greedy_slices_heap(m, get, &target));
        let bucket = best_secs(repeats, || greedy_slices(m, get, &target));
        let identical = greedy_slices(m, get, &target) == greedy_slices_heap(m, get, &target);
        assert!(identical, "bucket-queue greedy diverged from the heap");
        timed_row(
            &mut table,
            "greedy oracle heap→bucket",
            format!("n={n} m={m}"),
            heap,
            bucket,
            identical,
        );
    }

    // End-to-end: the full streaming pipeline under both backends.
    let (n, m, k) = scale.pick((1 << 10, 1 << 9, 8), (1 << 14, 1 << 13, 32));
    let inst = gen::planted(n, m, k, 42);
    let mut run = || {
        let mut alg = IterSetCover::new(IterSetCoverConfig {
            delta: 0.5,
            ..Default::default()
        });
        run_reported(&mut alg, &inst.system)
    };
    let e2e_repeats = scale.pick(1, 3);
    black_box(run()); // untimed warmup: fault pages + warm caches once
    let dispatched_secs = best_secs(e2e_repeats, &mut run);
    let dispatched = run();
    kernels::force_scalar(true);
    let scalar_secs = best_secs(e2e_repeats, &mut run);
    let forced = run();
    kernels::force_scalar(false);
    assert!(dispatched.verified.is_ok(), "iterSetCover: not a cover");
    let identical = dispatched.cover == forced.cover
        && dispatched.passes == forced.passes
        && dispatched.space_words == forced.space_words;
    timed_row(
        &mut table,
        "iterSetCover end-to-end",
        format!("n={n} m={m}"),
        scalar_secs,
        dispatched_secs,
        identical,
    );

    table.note(format!(
        "dispatched kernel backend: {} (base = forced scalar via force_scalar, same process)",
        kernels::backend_name()
    ));
    table.note("oracle rows: base = BinaryHeap lazy greedy, opt = gain-indexed bucket queue");
    table.note(
        "`identical` = bit-identical results across the two paths (asserted, not just reported)",
    );
    table.note("timing columns (… ms, speedup) are machine-dependent; repro --check skips them");
    table
}
