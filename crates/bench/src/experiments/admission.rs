//! E20 — pass-aligned, non-blocking admission under sustained load:
//! queue-wait percentiles, aligned vs the PR 4 boundary baseline.
//!
//! Not a paper artifact: this experiment measures the serving layer's
//! admission pipeline. Under the PR 4 scheduler
//! (`AdmissionMode::Boundary`, kept in-tree as the baseline), a query
//! arriving while a scan's fan-out is running waits for the next epoch
//! boundary — on average half an epoch of queue wait — and the
//! admission window blocks the epoch thread outright. The aligned
//! scheduler (`AdmissionMode::Aligned`, the default) drains arrivals
//! *while the fan-out runs* and splices them into the in-flight scan
//! at its boundary: the joiner's first logical pass rides the scan
//! that was running when it arrived (pass-aligned: the group may be on
//! its pass 5 — the splice is still exact), its queue wait collapses
//! to the drain latency, and it retires one epoch earlier.
//!
//! One closed-loop sustained workload runs once per mode against the
//! same wide repository (many sets over a small universe, so the scan
//! fan-out dominates every epoch): a few client threads, each
//! resubmitting its next distinct `iter` query after a short
//! deterministic think time, with one δ per client so completions
//! desynchronise — arrivals land at arbitrary phases of the in-flight
//! epochs, no pacing calibration needed. Everything structural
//! (queries, jobs — every query runs, none repeat) is deterministic
//! and gated by `repro --check`; the join counts and every timing
//! column are load-dependent and excluded. The headline numbers,
//! recorded in `BENCH_admission.json`: queue-wait p50 drops by orders
//! of magnitude (epoch-scale milliseconds → drain-scale microseconds)
//! with covers/passes/space bit-identical per query —
//! `service_equivalence` and the `alignment` suite pin the
//! bit-identity claim.

use crate::{Scale, Table};
use sc_service::{AdmissionMode, QuerySpec, ServiceBuilder, ServiceConfig, ServiceMetrics};
use sc_setsystem::SetSystem;
use sc_setsystem::{gen, Instance};

/// Per-client δ values: distinct pass/space trade-offs desynchronise
/// the clients' completion times, so resubmissions land at arbitrary
/// points of the group's epochs instead of marching in lockstep.
const DELTAS: [f64; 4] = [0.5, 0.7, 0.85, 1.0];

/// One worker keeps the scan phase of each epoch long and serial —
/// the regime where boundary admission's wait is most visible and the
/// aligned drain has the most scan to splice into (fine shards give it
/// a drain point every few sets). Observables are identical at any
/// worker count or shard size.
fn mode_config(mode: AdmissionMode) -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        shard_size: 64,
        admission: mode,
        ..Default::default()
    }
}

/// Closed-loop sustained load: `clients` threads, each submitting its
/// next (distinct-seed, per-client-δ) query after a short
/// deterministic think time — so the group never drains while the run
/// lasts, and arrivals land at arbitrary phases of the in-flight
/// epochs: exactly the arrivals the two admission modes treat
/// differently (wait out the scan vs splice into it).
fn run_mode(
    system: &SetSystem,
    mode: AdmissionMode,
    clients: usize,
    per_client: usize,
) -> ServiceMetrics {
    let queries = clients * per_client;
    let service = ServiceBuilder::new()
        .config(mode_config(mode))
        .tenant("default", system.clone())
        .build();
    let ((), metrics) = service.serve(|handle| {
        std::thread::scope(|s| {
            for c in 0..clients as u64 {
                let handle = handle.clone();
                s.spawn(move || {
                    for q in 0..per_client as u64 {
                        // Deterministic per-query think time (0–8 ms)
                        // decorrelates arrivals from epoch boundaries.
                        std::thread::sleep(std::time::Duration::from_millis((c * 7 + q * 5) % 9));
                        let outcome = handle
                            .submit(QuerySpec::IterCover {
                                delta: DELTAS[(c as usize) % DELTAS.len()],
                                seed: c * 1000 + q,
                            })
                            .expect("open")
                            .wait()
                            .expect("served");
                        assert!(outcome.goal_met());
                    }
                });
            }
        });
    });
    assert_eq!(metrics.jobs, queries, "distinct seeds: every query runs");
    assert_eq!(metrics.queries_completed, queries);
    metrics
}

fn row_cells(mode: &str, queries: usize, metrics: &ServiceMetrics) -> Vec<String> {
    vec![
        mode.into(),
        queries.to_string(),
        metrics.jobs.to_string(),
        metrics.mid_stream_admissions.to_string(),
        metrics.aligned_joins.to_string(),
        format!(
            "{:.2}",
            metrics.queue_wait.percentile(50.0).as_secs_f64() * 1e3
        ),
        format!(
            "{:.2}",
            metrics.queue_wait.percentile(99.0).as_secs_f64() * 1e3
        ),
        format!(
            "{:.1}",
            metrics.latency.percentile(50.0).as_secs_f64() * 1e3
        ),
        format!(
            "{:.1}",
            queries as f64 / metrics.elapsed.as_secs_f64().max(1e-9)
        ),
    ]
}

/// Runs the sustained stream under both admission modes and tabulates
/// queue-wait percentiles side by side.
pub fn admission(scale: Scale) -> Table {
    let mut table = Table::new(
        "E20 — pass-aligned non-blocking admission: queue wait under sustained load, aligned vs PR 4 boundary baseline",
        &[
            "mode",
            "queries",
            "jobs",
            "mid-stream joins",
            "aligned joins",
            "wait p50 ms",
            "wait p99 ms",
            "p50 ms",
            "qps",
        ],
    );
    // A wide repository (many sets over a small universe) makes the
    // scan fan-out the bulk of every epoch — the phase the two
    // admission modes treat differently: an arrival inside it waits
    // out the whole scan under boundary admission but splices into it
    // under aligned admission.
    let (n, m, k) = scale.pick((1 << 9, 1 << 14, 8), (1 << 10, 1 << 15, 16));
    let (clients, per_client) = scale.pick((4, 8), (4, 12));
    let queries = clients * per_client;
    let inst: Instance = gen::planted(n, m, k, 42);

    let boundary = run_mode(&inst.system, AdmissionMode::Boundary, clients, per_client);
    table.row(row_cells("boundary (PR 4 baseline)", queries, &boundary));
    let aligned = run_mode(&inst.system, AdmissionMode::Aligned, clients, per_client);
    table.row(row_cells("aligned (default)", queries, &aligned));
    assert!(
        aligned.mid_stream_admissions >= 1,
        "sustained load must exercise the splice path"
    );

    table.note(format!(
        "planted n={n}, m={m}, k={k}; {clients} closed-loop clients × {per_client} distinct iter queries each (δ per client from {DELTAS:?}, 0–8 ms think time), single worker",
    ));
    table.note(
        "boundary: a mid-scan arrival waits for the next epoch boundary; aligned: it is drained during the fan-out and spliced into the in-flight scan (queue wait = drain latency, one epoch saved)",
    );
    table.note(
        "aligned joins = splices into a group past its first scan (pass-2 joins pass-2); covers/passes/space are bit-identical per query in both modes (pinned by service_equivalence + alignment tests)",
    );
    table.note("join counts and timing columns (wait …, … ms, qps) are load-dependent; repro --check skips them");
    table
}
