//! E14 — ε-nets and the Brönnimann–Goodrich offline oracle
//! (Remark 4.7; the \[HS11\]/\[AES10\] machinery behind Section 4).
//!
//! Two measured claims:
//!
//! 1. **Haussler–Welzl** — a sample of `O((d/ε)·log(1/ε))` points is an
//!    ε-net with the advertised probability; the failure rate is
//!    *measured* across seeds, per shape family, not assumed.
//! 2. **Reweighting solves geometric set cover** — the BG loop returns
//!    an `O(k·log k)`-size cover in `O(k·log m)` doublings, the `ρ_g`
//!    oracle Theorem 4.6 assumes; its quality is placed against the
//!    combinatorial greedy on the materialised instance.

use crate::table::fmt_count;
use crate::{Scale, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_geometry::{
    bronnimann_goodrich, instances, sample_epsilon_net, verify_epsilon_net, BgConfig, ShapeFamily,
};

/// ε-net success rates and BG solver quality per shape family.
pub fn geometric_nets(scale: Scale) -> Table {
    let (n, m, k) = scale.pick((300, 150, 5), (1200, 600, 8));
    let trials = scale.pick(10, 40);
    let mut t = Table::new(
        format!("E14 / ε-nets + Brönnimann–Goodrich on random families (n={n}, m={m}, k={k})"),
        &["family", "artifact", "parameter", "measured", "reference"],
    );

    let families = [
        (
            "discs",
            ShapeFamily::Discs,
            instances::random_discs(n, m, k, 31),
        ),
        (
            "rects",
            ShapeFamily::Rects,
            instances::random_rects(n, m, k, 32),
        ),
        (
            "fat-triangles",
            ShapeFamily::FatTriangles,
            instances::random_fat_triangles(n, m, k, 33),
        ),
    ];

    // 1. ε-net failure rate at q = 0.2.
    let eps = 0.15;
    let q = 0.2;
    for (label, family, inst) in &families {
        let weights = vec![1.0; inst.points.len()];
        let mut rng = StdRng::seed_from_u64(1234);
        let mut failures = 0usize;
        let mut net_sizes = 0usize;
        for _ in 0..trials {
            let net = sample_epsilon_net(&inst.points, *family, eps, q, &mut rng);
            net_sizes += net.len();
            if verify_epsilon_net(&inst.points, &weights, &inst.shapes, &net, eps).is_some() {
                failures += 1;
            }
        }
        t.row(vec![
            label.to_string(),
            "ε-net failure rate".into(),
            format!("ε={eps}, q={q}, d={}", family.vc_dim()),
            format!(
                "{:.2} ({failures}/{trials})",
                failures as f64 / trials as f64
            ),
            format!("≤ {q} (Haussler–Welzl)"),
        ]);
        t.row(vec![
            label.to_string(),
            "mean net size".into(),
            format!("ε={eps}"),
            fmt_count(net_sizes / trials),
            format!(
                "O((d/ε)·log(1/ε)) = {}",
                fmt_count(sc_geometry::net_sample_size(*family, eps, q))
            ),
        ]);
    }

    // 2. BG solver quality vs combinatorial greedy.
    for (label, _, inst) in &families {
        let out = bronnimann_goodrich(&inst.points, &inst.shapes, &BgConfig::default())
            .expect("feasible by construction");
        assert!(inst.verify_cover(&out.cover).is_ok(), "{label}");
        let system = inst.to_set_system();
        let sets = system.all_bitsets();
        let greedy = sc_offline::greedy(&sets, &sc_bitset::BitSet::full(n)).unwrap();
        t.row(vec![
            label.to_string(),
            "BG cover size".into(),
            format!("guessed k={}", out.guessed_k),
            fmt_count(out.cover.len()),
            format!("greedy {} / planted {k}; bound O(k·d·log k)", greedy.len()),
        ]);
        t.row(vec![
            label.to_string(),
            "BG work".into(),
            "doublings / net draws".into(),
            format!("{} / {}", out.doublings, out.net_draws),
            format!(
                "O(k·log(m/k)) = {}",
                fmt_count((k as f64 * (m as f64 / k as f64).log2()).ceil() as usize)
            ),
        ]);
    }

    t.note("the BG loop never materialises the O(mn) incidence matrix — it touches geometry only through O(1) containment tests, which is what qualifies it as the Remark 4.7 oracle");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_rates_within_budget_and_bg_terminates() {
        let t = geometric_nets(Scale::Quick);
        // Rows 0,2,4 are failure rates: parse "x.xx (f/t)".
        for i in [0usize, 2, 4] {
            let rate: f64 = t.rows[i][3].split(' ').next().unwrap().parse().unwrap();
            assert!(
                rate <= 0.6,
                "row {i}: measured failure rate {rate} wildly above budget"
            );
        }
        // BG rows exist for all three families.
        assert_eq!(t.rows.len(), 12);
    }
}
