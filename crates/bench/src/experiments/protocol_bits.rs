//! E15 — measured communication costs of the natural protocols against
//! the paper's lower-bound curves (Sections 3 and 5).
//!
//! Three regimes, all in real encoded bits on the wire:
//!
//! * **one round, SetCover/Disjointness** — Alice-sends-all costs
//!   exactly `m·n` bits; Theorems 3.1/3.2 say Ω(mn) is forced, so the
//!   naive protocol is *optimal*: measured/bound ≈ 1.
//! * **enough rounds, chasing problems** — the chain protocols cost
//!   `O(p·log n)` (pointer) / `O(p·n)` (set / ISC) bits: exponentially
//!   below the round-starved \[GO13\] bound `n^{1+1/(2p)}/polylog`,
//!   which is what makes multi-pass streaming algorithms possible at
//!   all (Theorem 5.4 hinges on exactly this separation).
//! * **one round, pointer chasing** — the table dump costs
//!   `Θ(p·n·log n)`: the collapse that round starvation forces.

use crate::table::fmt_count;
use crate::{Scale, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_comm::chasing::{IntersectionSetChasing, PointerChasing};
use sc_comm::protocol::{
    alice_sends_all, chain_intersection_set_chasing, chain_pointer_chasing,
    one_round_pointer_chasing,
};
use sc_comm::two_party::TwoPartySetCover;

/// Tabulates measured protocol bits against the matching bounds.
pub fn protocol_bits(scale: Scale) -> Table {
    let mut t = Table::new(
        "E15 / protocol executions vs lower-bound curves (Sections 3 & 5)",
        &[
            "protocol",
            "instance",
            "rounds",
            "bits (measured)",
            "reference curve",
            "measured/ref",
        ],
    );

    // --- One round: two-party SetCover. ------------------------------
    let (n2, m2) = scale.pick((32, 16), (128, 64));
    let inst = TwoPartySetCover::random(n2, m2, m2, 5);
    let run = alice_sends_all(&inst);
    let bound = m2 * n2;
    t.row(vec![
        "alice-sends-all (1 round)".into(),
        format!("two-party SetCover(n={n2}, m_A={m2})"),
        run.rounds.to_string(),
        fmt_count(run.bits),
        format!("Ω(mn) = {} [Thm 3.1]", fmt_count(bound)),
        format!("{:.2}", run.bits as f64 / bound as f64),
    ]);

    // --- Chains: pointer chasing and ISC across n and p. --------------
    let ns: Vec<usize> = scale.pick(vec![64, 1024], vec![64, 256, 1024, 4096]);
    for &p in &[2usize, 3] {
        for &n in &ns {
            let mut rng = StdRng::seed_from_u64((n * p) as u64);
            let pc = PointerChasing::random(n, p, &mut rng);
            let chain = chain_pointer_chasing(&pc);
            assert_eq!(chain.output, pc.solve());
            let dump = one_round_pointer_chasing(&pc);
            assert_eq!(dump.output, pc.solve());
            let log_n = (n as f64).log2().ceil() as usize;
            t.row(vec![
                format!("pointer-chase chain (p−1={} rounds)", p - 1),
                format!("PC(n={n}, p={p})"),
                chain.rounds.to_string(),
                fmt_count(chain.bits),
                format!("(p−1)·⌈log n⌉ = {}", fmt_count((p - 1) * log_n)),
                format!("{:.2}", chain.bits as f64 / ((p - 1) * log_n) as f64),
            ]);
            t.row(vec![
                "pointer-chase table dump (1 round)".into(),
                format!("PC(n={n}, p={p})"),
                dump.rounds.to_string(),
                fmt_count(dump.bits),
                format!("(p−1)·n·⌈log n⌉ = {}", fmt_count((p - 1) * n * log_n)),
                format!("{:.2}", dump.bits as f64 / ((p - 1) * n * log_n) as f64),
            ]);

            let isc = IntersectionSetChasing::random(n, p, 2, (n * p) as u64 + 1);
            let run = chain_intersection_set_chasing(&isc);
            assert_eq!(run.output, isc.output());
            // The GO13 bound for round-starved executions.
            let go13 = (n as f64).powf(1.0 + 1.0 / (2.0 * p as f64));
            t.row(vec![
                format!("ISC chain ({} rounds)", run.rounds),
                format!("ISC(n={n}, p={p})"),
                run.rounds.to_string(),
                fmt_count(run.bits),
                format!("starved bound n^{{1+1/2p}} = {}", fmt_count(go13 as usize)),
                format!("{:.2}", run.bits as f64 / go13),
            ]);
        }
    }

    t.note("the ISC-chain/bound ratio falls with n and crosses below 1 (at n ≈ 5^{2p}): enough rounds beat the round-starved Ω̃(n^{1+1/2p}) bound — the separation Theorem 5.4 converts into the streaming pass/space trade-off");
    t.note("the bound weakens as p grows (the crossover moves out), matching the paper's regime δ ≥ log log n / log n in Theorem 5.4");
    t.note("the one-round rows sit at ratio ≈ 1 against their Ω(mn) / Θ(p·n·log n) references: round starvation forces input-sized messages");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_beats_starved_bound_and_one_round_does_not() {
        let t = protocol_bits(Scale::Quick);
        // Row 0: alice-sends-all at ratio exactly 1.
        assert_eq!(t.rows[0][5], "1.00");
        // Largest-n ISC row at p=2: measured well under the starved
        // bound (3n < n^{5/4} ⟺ n > 81, well inside the sweep).
        let p2_rows: Vec<&Vec<String>> = t
            .rows
            .iter()
            .filter(|r| r[0].starts_with("ISC chain") && r[1].ends_with("p=2)"))
            .collect();
        let last_ratio: f64 = p2_rows.last().unwrap()[5].parse().unwrap();
        assert!(
            last_ratio < 1.0,
            "chain should beat the starved bound, ratio {last_ratio}"
        );
        // The ratio falls with n within the p=2 series.
        let first_ratio: f64 = p2_rows.first().unwrap()[5].parse().unwrap();
        assert!(last_ratio < first_ratio);
        // Table dumps cost more than chains at every n.
        let bits = |r: &Vec<String>| r[3].replace(',', "").parse::<usize>().unwrap();
        let chains: Vec<usize> = t
            .rows
            .iter()
            .filter(|r| r[0].starts_with("pointer-chase chain"))
            .map(bits)
            .collect();
        let dumps: Vec<usize> = t
            .rows
            .iter()
            .filter(|r| r[0].starts_with("pointer-chase table"))
            .map(bits)
            .collect();
        for (c, d) in chains.iter().zip(&dumps) {
            assert!(d > c, "dump {d} must exceed chain {c}");
        }
    }
}
