//! E12 — ablations of the design choices DESIGN.md calls out.
//!
//! Three switches, each isolating one idea of the paper:
//!
//! 1. **Size test off** (Figure 1.3): store every intersecting
//!    projection instead of emitting heavy sets immediately. The stored
//!    footprint balloons — the size test is what caps projections at
//!    `O(|S|/k)` ids each.
//! 2. **Paper constants on**: the literal `c·ρ·k·n^δ·log m·log n`
//!    sample exceeds the residual at laptop scale, collapsing the
//!    algorithm toward offline solving (fewer effective iterations,
//!    more space).
//! 3. **Canonical decomposition off** (Section 4): rectangles stored as
//!    verbatim deduplicated projections. On the Figure 1.2 family the
//!    store reverts from Õ(n) to Ω(n²)-shaped growth.

use crate::table::fmt_count;
use crate::{Scale, Table};
use sc_core::{IterSetCover, IterSetCoverConfig};
use sc_geometry::{instances, AlgGeomSc, AlgGeomScConfig};
use sc_setsystem::gen;
use sc_stream::run_reported;

/// Runs the three ablations.
pub fn ablations(scale: Scale) -> Table {
    let mut t = Table::new(
        "E12 / ablations — what each design choice buys",
        &[
            "configuration",
            "workload",
            "|sol|",
            "passes",
            "space (words)",
            "store (candidates)",
        ],
    );

    // --- 1 & 2: iterSetCover switches. -------------------------------
    let (n, m, k) = scale.pick((512, 1024, 8), (2048, 4096, 16));
    let inst = gen::planted(n, m, k, 99);
    let configs: Vec<(&str, IterSetCoverConfig)> = vec![
        (
            "iterSetCover (paper design)",
            IterSetCoverConfig {
                delta: 0.5,
                ..Default::default()
            },
        ),
        (
            "… size test OFF",
            IterSetCoverConfig {
                delta: 0.5,
                disable_size_test: true,
                ..Default::default()
            },
        ),
        (
            "… paper constants ON",
            IterSetCoverConfig {
                delta: 0.5,
                paper_constants: true,
                ..Default::default()
            },
        ),
    ];
    for (label, cfg) in configs {
        let mut alg = IterSetCover::new(cfg);
        let r = run_reported(&mut alg, &inst.system);
        assert!(r.verified.is_ok(), "{label}: {:?}", r.verified);
        t.row(vec![
            label.to_string(),
            format!("planted(n={n},m={m},k={k})"),
            r.cover_size().to_string(),
            r.passes.to_string(),
            fmt_count(r.space_words),
            "-".into(),
        ]);
    }

    // --- Oracle ablation: ρ's effect in the O(ρ/δ) bound. -------------
    // Smaller sub-instance so the LP oracle's O(n log n) rounds stay
    // affordable inside the sweep.
    let (on, om, ok) = scale.pick((256, 512, 8), (512, 1024, 8));
    let oracle_inst = gen::planted(on, om, ok, 101);
    for (label, solver) in [
        (
            "… oracle = greedy (ρ = ln n)",
            sc_offline::OfflineSolver::Greedy,
        ),
        (
            "… oracle = exact (ρ = 1)",
            sc_offline::OfflineSolver::DEFAULT_EXACT,
        ),
        (
            "… oracle = primal-dual (ρ = f)",
            sc_offline::OfflineSolver::PrimalDual,
        ),
        (
            "… oracle = lp-round (ρ = O(log n))",
            sc_offline::OfflineSolver::LpRound { seed: 7 },
        ),
    ] {
        let mut alg = IterSetCover::new(IterSetCoverConfig {
            delta: 0.5,
            solver,
            ..Default::default()
        });
        let r = run_reported(&mut alg, &oracle_inst.system);
        assert!(r.verified.is_ok(), "{label}: {:?}", r.verified);
        t.row(vec![
            label.to_string(),
            format!("planted(n={on},m={om},k={ok})"),
            r.cover_size().to_string(),
            r.passes.to_string(),
            fmt_count(r.space_words),
            "-".into(),
        ]);
    }

    // --- 3: canonical decomposition on the Figure 1.2 family. --------
    let half = scale.pick(32, 96);
    let adv = instances::two_line(half, None, 4);
    for (label, decompose) in [
        ("algGeomSC (canonical pieces)", true),
        ("… decomposition OFF", false),
    ] {
        let mut alg = AlgGeomSc::new(AlgGeomScConfig {
            decompose_rects: decompose,
            ..Default::default()
        });
        let r = alg.run(&adv);
        assert!(r.verified.is_ok(), "{label}: {:?}", r.verified);
        t.row(vec![
            label.to_string(),
            format!("two_line(n={}, m={})", adv.points.len(), adv.shapes.len()),
            r.cover_size().to_string(),
            r.passes.to_string(),
            fmt_count(r.space_words),
            fmt_count(r.max_store_candidates),
        ]);
    }

    t.note("size test OFF / decomposition OFF keep correctness but lose the space bound — exactly the role the paper assigns those ideas");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_inflate_space_as_predicted() {
        let t = ablations(Scale::Quick);
        let space = |i: usize| t.rows[i][4].replace(',', "").parse::<usize>().unwrap();
        // Size test off costs more space than the paper design.
        assert!(
            space(1) > space(0),
            "size-test ablation: {} !> {}",
            space(1),
            space(0)
        );
        // Four oracle rows follow, all covering (asserted inside the
        // runner); then the two canonical-store rows: dedupe-only
        // stores more candidates than canonical pieces.
        let canon = t.rows.len() - 2;
        let store = |i: usize| t.rows[i][5].replace(',', "").parse::<usize>().unwrap();
        assert!(
            store(canon + 1) > 2 * store(canon),
            "decomposition ablation: {} !> 2×{}",
            store(canon + 1),
            store(canon)
        );
    }

    #[test]
    fn oracle_quality_ordering_holds() {
        let t = ablations(Scale::Quick);
        // Oracle rows are 3..7: greedy, exact, primal-dual, lp-round.
        let size = |i: usize| t.rows[i][2].parse::<usize>().unwrap();
        let exact = size(4);
        for (i, label) in [(3, "greedy"), (5, "primal-dual"), (6, "lp-round")] {
            assert!(
                size(i) >= exact,
                "{label} ({}) beat the exact oracle ({exact})?",
                size(i)
            );
        }
    }
}
