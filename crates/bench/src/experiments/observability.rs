//! E22 — telemetry overhead: the same service workloads with the
//! process-wide gate off and on.
//!
//! Not a paper artifact: this experiment prices the observability layer
//! (`sc_telemetry` counters, stage spans, and the query journal wired
//! through `sc_service`, `sc_stream`, and the `sc_bitset` kernels).
//! Each workload row runs its batch `reps` times with telemetry
//! disabled (timing phase A), then — after a registry reset — `reps`
//! times with telemetry enabled (phase B), and reports both wall-clocks
//! plus their ratio. The design target is ≤2% overhead at full scale:
//! an un-enabled site costs one relaxed atomic load, an enabled one a
//! sharded relaxed fetch-add (counters), a clock read (spans), or a
//! short mutex push (journal events, bounded per query lifecycle).
//!
//! The deterministic columns — scans, jobs, hits, coalesced, the
//! journal event total, and the kernel-call total — are what the CI
//! gate re-verifies; they double as an end-to-end proof that the
//! ledger reconciles with `ServiceMetrics` exactly. Kernel calls are
//! reported as avx2+scalar combined, which is backend-independent (the
//! dispatch count does not depend on which arm serves it), so the
//! committed baseline holds on runners without AVX2. Timing columns
//! (`… ms`, the `speedup` ratio) are machine-dependent and skipped by
//! `repro --check` as usual.

use crate::{Scale, Table};
use sc_service::{QuerySpec, ServiceBuilder, ServiceConfig, ServiceMetrics};
use sc_setsystem::{gen, SetSystem};
use std::time::Instant;

fn iter(seed: u64) -> QuerySpec {
    QuerySpec::IterCover { delta: 0.5, seed }
}

/// Counter values summed into a comparable snapshot.
fn counters() -> std::collections::BTreeMap<&'static str, u64> {
    sc_telemetry::registered_counters().into_iter().collect()
}

/// Runs `reps` fresh services over `specs`, returning the elapsed
/// wall-clock and the last run's metrics. Every service (and its
/// worker threads) is dropped inside the timed region, so thread-local
/// kernel-counter batches have flushed by the time the caller reads
/// the registry.
fn run_phase(
    system: &SetSystem,
    cfg: &ServiceConfig,
    specs: &[QuerySpec],
    reps: usize,
) -> (f64, ServiceMetrics) {
    let start = Instant::now();
    let mut last = None;
    for _ in 0..reps {
        let service = ServiceBuilder::new()
            .config(*cfg)
            .tenant("default", system.clone())
            .build();
        let (_, metrics) = service.run_batch(specs);
        last = Some(metrics);
    }
    (
        start.elapsed().as_secs_f64() * 1e3,
        last.expect("reps >= 1"),
    )
}

/// Prices the telemetry layer: disabled-vs-enabled wall-clock per
/// workload, with the enabled run's ledger tabulated alongside.
pub fn observability(scale: Scale) -> Table {
    let mut table = Table::new(
        "E22 — telemetry overhead: gate off vs on over the service workloads",
        &[
            "workload",
            "queries",
            "scans",
            "jobs",
            "hits",
            "coalesced",
            "events",
            "kernel calls",
            "off ms",
            "on ms",
            "on/off speedup",
        ],
    );
    let (n, m, k) = scale.pick((1 << 10, 1 << 9, 8), (1 << 13, 1 << 12, 16));
    let (reps, unique_q, wave, repeat_q) = scale.pick((2, 6, 3, 10), (3, 16, 8, 32));
    let inst = gen::planted(n, m, k, 42);

    let workloads: Vec<(&str, Vec<QuerySpec>, ServiceConfig)> = vec![
        (
            "unique iter seeds",
            (0..unique_q as u64).map(iter).collect(),
            ServiceConfig::default(),
        ),
        (
            "repeats beyond wave 1",
            (0..repeat_q).map(|_| iter(0)).collect(),
            ServiceConfig {
                max_inflight: wave,
                ..Default::default()
            },
        ),
        (
            "duplicates, coalescing on",
            (0..repeat_q as u64).map(|i| iter(i % 3)).collect(),
            ServiceConfig {
                coalesce: true,
                cache_capacity: 0,
                ..Default::default()
            },
        ),
    ];

    let mut worst_ratio = 1.0f64;
    for (name, specs, cfg) in &workloads {
        sc_telemetry::set_enabled(false);
        // Untimed warm-up: first touch of the cloned repository and the
        // thread pool would otherwise land entirely on the off phase.
        run_phase(&inst.system, cfg, specs, 1);
        let (off_ms, quiet) = run_phase(&inst.system, cfg, specs, reps);

        sc_telemetry::reset();
        sc_telemetry::set_enabled(true);
        let before = counters();
        let (on_ms, metrics) = run_phase(&inst.system, cfg, specs, reps);
        let (events, _) = sc_telemetry::journal_stats();
        let after = counters();
        sc_telemetry::set_enabled(false);

        // Recording is observational only: both phases ran the exact
        // same schedule.
        assert_eq!(quiet.physical_scans, metrics.physical_scans);
        assert_eq!(quiet.jobs, metrics.jobs);
        assert_eq!(quiet.cache_hits, metrics.cache_hits);
        // The ledger reconciles with the per-run metrics exactly: this
        // process records nothing else while the gate is on.
        let delta = |name: &str| {
            after.get(name).copied().unwrap_or(0) - before.get(name).copied().unwrap_or(0)
        };
        assert_eq!(
            delta("sc_queries_completed_total"),
            (reps * metrics.queries_completed) as u64
        );
        assert_eq!(
            metrics.queries_completed,
            metrics.jobs + metrics.cache_hits + metrics.coalesced
        );
        let kernel_calls =
            delta("sc_kernel_calls_avx2_total") + delta("sc_kernel_calls_scalar_total");

        let ratio = off_ms / on_ms.max(1e-9);
        worst_ratio = worst_ratio.min(ratio);
        table.row(vec![
            name.to_string(),
            specs.len().to_string(),
            metrics.physical_scans.to_string(),
            metrics.jobs.to_string(),
            metrics.cache_hits.to_string(),
            metrics.coalesced.to_string(),
            events.to_string(),
            kernel_calls.to_string(),
            format!("{off_ms:.1}"),
            format!("{on_ms:.1}"),
            format!("{ratio:.2}x"),
        ]);
    }

    table.note(format!(
        "planted n={n}, m={m}, k={k}; each phase runs its batch {reps}× on a fresh service"
    ));
    table.note(
        "scans/jobs/hits/coalesced are the last enabled run's ServiceMetrics; \
         events and kernel calls are enabled-phase totals across all reps",
    );
    table.note(format!(
        "on/off speedup < 1.00x is telemetry overhead; worst this run: {:.1}% \
         (target ≤ 2% at full scale)",
        (1.0 / worst_ratio.max(1e-9) - 1.0) * 100.0
    ));
    table.note("timing columns (… ms, speedup) are machine-dependent; repro --check skips them");
    table
}
