//! E25 — shard-granular cross-tenant interleaving: aggregate
//! throughput of K narrow tenants under one work-stealing fan-out.
//!
//! Not a paper artifact: this experiment prices the PR 10 scheduling
//! change. Epoch-granular granting (the E23 baseline) runs one
//! tenant's scan epoch to completion before the next lane gets the
//! workers, so K tenants with quota 1 serialize into K single-consumer
//! fan-outs — the worker pool idles however wide it is. Shard-granular
//! granting lowers the fairness gate's unit to one `(tenant, shard)`
//! work item: every granted lane's in-flight epoch feeds the shared
//! [`sc_service`] interleaved cursor, the deficit-round-robin gate
//! meters shard units instead of whole epochs, and K narrow tenants
//! saturate the pool together.
//!
//! Four rows: the same K-tenant flood under epoch and under shard
//! granting (the aggregate-throughput contrast), then the E23-style
//! cold-tenant probe — unloaded baseline and mid-flood — re-run in
//! shard mode to re-assert the starvation bound under the finer grant
//! unit. The deterministic columns (tenants, queries, jobs, passes)
//! are what the CI gate re-verifies; `wall ms` / `agg qps` /
//! `wait p99 ms` / `speedup` columns are timing-dependent and skipped
//! by `repro --check` as usual. Bit-identity against solo runs, the
//! shard-grant accounting, the ≥2x saturation target (full scale, ≥4
//! cores), and the 10x cold-wait bound are asserted at runtime, so a
//! regression fails the run itself, not just the table diff.

use crate::{Scale, Table};
use sc_service::{InterleaveMode, QuerySpec, ServiceBuilder};
use sc_setsystem::{gen, Instance};
use std::time::{Duration, Instant};

fn iter(seed: u64) -> QuerySpec {
    QuerySpec::IterCover { delta: 0.5, seed }
}

/// Millisecond percentile over a batch of queue waits (nearest-rank).
fn pctl_ms(waits: &mut [Duration], q: f64) -> f64 {
    waits.sort_unstable();
    let rank = ((waits.len() as f64 * q / 100.0).ceil() as usize).max(1);
    waits[rank.min(waits.len()) - 1].as_secs_f64() * 1e3
}

/// Queue-wait floor for the fairness ratio: below this, both sides of
/// the division are scheduler noise and the ratio is meaningless.
const FLOOR_MS: f64 = 5.0;

/// Distinct per-tenant query batch: tenant `t` asks seeds
/// `t*q .. t*q+q`, so no two jobs in the flood coalesce or hit cache.
fn tenant_specs(t: usize, q: usize) -> Vec<QuerySpec> {
    (0..q).map(|i| iter((t * q + i) as u64)).collect()
}

/// `(cover, logical passes, space words)` per query, run solo through
/// `run_batch` on a fresh single-tenant service — the bit-identity
/// reference both flood modes must reproduce exactly.
fn solo_reference(inst: &Instance, specs: &[QuerySpec]) -> Vec<(Vec<u32>, usize, usize)> {
    let service = ServiceBuilder::new()
        .tenant("solo", inst.system.clone())
        .build();
    let (outcomes, _) = service.run_batch(specs);
    outcomes
        .into_iter()
        .map(|o| (o.cover, o.logical_passes, o.space_words))
        .collect()
}

/// Floods K narrow tenants concurrently under the given grant unit and
/// returns `(wall, aggregate logical passes, shard grants)`, asserting
/// every answer bit-identical to its solo reference.
fn flood(
    mode: InterleaveMode,
    insts: &[Instance],
    q: usize,
    reference: &[Vec<(Vec<u32>, usize, usize)>],
) -> (Duration, usize, usize) {
    let mut builder = ServiceBuilder::new().interleave(mode);
    for (t, inst) in insts.iter().enumerate() {
        builder = builder.tenant_with_quota(format!("t{t}"), inst.system.clone(), 1);
    }
    let service = builder.build();
    let (elapsed, metrics) = {
        let (answered, metrics) = service.serve(|handle| {
            let lanes: Vec<_> = (0..insts.len())
                .map(|t| handle.with_tenant(&format!("t{t}")).expect("tenant exists"))
                .collect();
            let start = Instant::now();
            // Submit round-robin across tenants so every lane's queue
            // fills before the first epoch retires.
            let tickets: Vec<_> = (0..q)
                .flat_map(|i| {
                    lanes
                        .iter()
                        .enumerate()
                        .map(move |(t, lane)| {
                            (t, lane.submit(iter((t * q + i) as u64)).expect("submit"))
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            let answered: Vec<_> = tickets
                .into_iter()
                .map(|(t, ticket)| (t, ticket.wait().expect("answered")))
                .collect();
            (start.elapsed(), answered)
        });
        let (elapsed, answered) = answered;
        let mut passes = 0usize;
        for (t, outcome) in answered {
            let i = outcome.spec_seed_index(t, q);
            let (cover, solo_passes, solo_space) = &reference[t][i];
            assert_eq!(&outcome.cover, cover, "t{t} seed {i}: cover drifted");
            assert_eq!(outcome.logical_passes, *solo_passes, "t{t} seed {i}");
            assert_eq!(outcome.space_words, *solo_space, "t{t} seed {i}");
            passes += outcome.logical_passes;
        }
        (elapsed, (passes, metrics))
    };
    let (passes, metrics) = metrics;
    assert_eq!(metrics.jobs, insts.len() * q, "distinct seeds never hit");
    match mode {
        InterleaveMode::Epoch => assert_eq!(
            metrics.shard_grants, 0,
            "epoch granting must not touch the shard-unit gate"
        ),
        InterleaveMode::Shard => {
            assert!(metrics.shard_grants > 0, "shard granting metered no units");
            // Every tenant absorbed at least one unit through the
            // shared cursor — the per-tenant counter surface E25 pins.
            for t in 0..insts.len() {
                let (_, _, _, _, grants) = service
                    .tenants()
                    .get(&format!("t{t}"))
                    .expect("tenant exists")
                    .meta()
                    .counters()
                    .snapshot();
                assert!(grants > 0, "t{t} recorded no shard grants");
            }
        }
    }
    (elapsed, passes, metrics.shard_grants)
}

/// Maps an outcome back to its index in the tenant's spec batch.
trait SeedIndex {
    fn spec_seed_index(&self, tenant: usize, q: usize) -> usize;
}

impl SeedIndex for sc_service::QueryOutcome {
    fn spec_seed_index(&self, tenant: usize, q: usize) -> usize {
        match self.spec {
            QuerySpec::IterCover { seed, .. } => seed as usize - tenant * q,
            _ => unreachable!("the flood submits IterCover only"),
        }
    }
}

/// Shard-granular interleaving: K narrow tenants through one
/// work-stealing fan-out, vs the epoch-granular baseline.
pub fn interleave(scale: Scale) -> Table {
    let mut table = Table::new(
        "E25 — shard-granular cross-tenant interleaving: K narrow tenants, one fan-out",
        &[
            "workload",
            "mode",
            "tenants",
            "queries",
            "jobs",
            "passes",
            "wall ms",
            "agg qps",
            "wait p99 ms",
            "speedup / blowup",
        ],
    );
    let (k, q) = scale.pick((3usize, 8usize), (8, 6));
    let (n, m, sets_k) = scale.pick((1 << 8, 1 << 9, 8), (1 << 10, 1 << 11, 16));
    let insts: Vec<Instance> = (0..k)
        .map(|t| gen::planted(n, m, sets_k, 100 + t as u64))
        .collect();
    let reference: Vec<Vec<(Vec<u32>, usize, usize)>> = insts
        .iter()
        .enumerate()
        .map(|(t, inst)| solo_reference(inst, &tenant_specs(t, q)))
        .collect();

    let (epoch_wall, epoch_passes, _) = flood(InterleaveMode::Epoch, &insts, q, &reference);
    let (shard_wall, shard_passes, shard_grants) =
        flood(InterleaveMode::Shard, &insts, q, &reference);
    assert_eq!(
        epoch_passes, shard_passes,
        "logical pass totals must not depend on the grant unit"
    );
    let total = k * q;
    let qps = |wall: Duration| total as f64 / wall.as_secs_f64().max(1e-9);
    let speedup = epoch_wall.as_secs_f64() / shard_wall.as_secs_f64().max(1e-9);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if matches!(scale, Scale::Full) && cores >= 4 {
        assert!(
            speedup >= 2.0,
            "shard interleaving reached only {speedup:.2}x over epoch granting \
             ({k} narrow tenants, {cores} cores; target 2x)"
        );
    }
    table.row(vec![
        format!("{k}-tenant flood"),
        "epoch".into(),
        k.to_string(),
        total.to_string(),
        total.to_string(),
        epoch_passes.to_string(),
        format!("{:.1}", epoch_wall.as_secs_f64() * 1e3),
        format!("{:.0}", qps(epoch_wall)),
        "-".into(),
        "1.0x".into(),
    ]);
    table.row(vec![
        format!("{k}-tenant flood"),
        "shard".into(),
        k.to_string(),
        total.to_string(),
        total.to_string(),
        shard_passes.to_string(),
        format!("{:.1}", shard_wall.as_secs_f64() * 1e3),
        format!("{:.0}", qps(shard_wall)),
        "-".into(),
        format!("{speedup:.1}x"),
    ]);

    // The E23 starvation bound, re-asserted under the finer grant
    // unit: a cold tenant probed mid-flood must stay within 10x of
    // its unloaded queue-wait p99.
    let (cn, cm, ck) = scale.pick((1 << 6, 1 << 7, 4), (1 << 7, 1 << 8, 4));
    let probes = scale.pick(8usize, 16);
    let cold_inst = gen::planted(cn, cm, ck, 9);
    let solo = ServiceBuilder::new()
        .tenant("cold", cold_inst.system.clone())
        .interleave(InterleaveMode::Shard)
        .build();
    let ((mut unloaded, unloaded_passes), _) = solo.serve(|handle| {
        let mut passes = 0usize;
        let waits = (0..probes as u64)
            .map(|seed| {
                let o = handle
                    .submit(iter(seed))
                    .expect("submit")
                    .wait()
                    .expect("answered");
                passes += o.logical_passes;
                o.queue_wait
            })
            .collect::<Vec<_>>();
        (waits, passes)
    });
    let unloaded_p99 = pctl_ms(&mut unloaded, 99.0);
    table.row(vec![
        "cold tenant, unloaded".into(),
        "shard".into(),
        "1".into(),
        probes.to_string(),
        probes.to_string(),
        unloaded_passes.to_string(),
        "-".into(),
        "-".into(),
        format!("{unloaded_p99:.2}"),
        "1.0x".into(),
    ]);

    let mut builder = ServiceBuilder::new().interleave(InterleaveMode::Shard);
    for (t, inst) in insts.iter().enumerate() {
        builder = builder.tenant_with_quota(format!("t{t}"), inst.system.clone(), 1);
    }
    let service = builder.tenant("cold", cold_inst.system).build();
    let ((mut cold_waits, cold_passes, flood_done_at_first), metrics) = service.serve(|handle| {
        let cold = handle.with_tenant("cold").expect("tenant exists");
        let flood_tickets: Vec<_> = (0..k)
            .flat_map(|t| {
                let lane = handle.with_tenant(&format!("t{t}")).expect("tenant exists");
                tenant_specs(t, q)
                    .into_iter()
                    .map(move |spec| lane.submit(spec).expect("submit flood"))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut waits = Vec::with_capacity(probes);
        let mut passes = 0usize;
        let mut flood_done_at_first = 0u64;
        for seed in 0..probes as u64 {
            let outcome = cold
                .submit(iter(seed))
                .expect("submit cold")
                .wait()
                .expect("cold answered");
            if seed == 0 {
                // How much of the flood had completed when the first
                // cold answer landed — the non-starvation witness.
                flood_done_at_first = (0..k)
                    .map(|t| {
                        handle
                            .tenants()
                            .get(&format!("t{t}"))
                            .expect("tenant exists")
                            .meta()
                            .counters()
                            .snapshot()
                            .0
                    })
                    .sum();
            }
            passes += outcome.logical_passes;
            waits.push(outcome.queue_wait);
        }
        for t in flood_tickets {
            assert!(t.wait().expect("flood answered").goal_met());
        }
        (waits, passes, flood_done_at_first)
    });
    assert_eq!(metrics.queries_completed, total + probes);
    assert!(
        (flood_done_at_first as usize) < total,
        "the flood drained before the first cold probe returned \
         ({flood_done_at_first}/{total}) — the contest never happened"
    );
    let cold_p99 = pctl_ms(&mut cold_waits, 99.0);
    let blowup = cold_p99.max(FLOOR_MS) / unloaded_p99.max(FLOOR_MS);
    assert!(
        blowup <= 10.0,
        "cold-tenant queue-wait p99 blew up {blowup:.1}x under the shard-interleaved \
         flood (cold {cold_p99:.2} ms vs unloaded {unloaded_p99:.2} ms; bound 10x)"
    );
    table.row(vec![
        "cold tenant, mid-flood".into(),
        "shard".into(),
        (k + 1).to_string(),
        probes.to_string(),
        probes.to_string(),
        cold_passes.to_string(),
        "-".into(),
        "-".into(),
        format!("{cold_p99:.2}"),
        format!("{blowup:.1}x"),
    ]);

    table.note(format!(
        "{k} narrow tenants (quota 1) over planted n={n}, m={m}, k={sets_k}, \
         {q} distinct iter queries each; cold planted n={cn}, m={cm}, k={ck} \
         ({probes} sequential probes); {shard_grants} shard units metered in the shard flood"
    ));
    table.note(format!(
        "runtime-asserted: every flood answer bit-identical to its solo run under both \
         grant units; shard mode meters >0 units per tenant, epoch mode meters none; \
         cold p99 within 10x of unloaded (floored at {FLOOR_MS} ms) while the flood is \
         live — {flood_done_at_first}/{total} flood queries had finished when the first \
         cold answer arrived"
    ));
    table.note(format!(
        "speedup target (>=2x vs epoch granting) asserted at full scale on >=4 cores \
         (this run: {cores}); every `wall/qps/wait/speedup` column is timing-dependent \
         and skipped by repro --check"
    ));
    table
}
