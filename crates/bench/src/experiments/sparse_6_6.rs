//! E8 — Theorem 6.6: sparse Set Cover instances from OR_t of Equal
//! Limited Pointer Chasing.
//!
//! Verifies the whole Section 6 chain: overlay fidelity (the ISC output
//! tracks the OR output), the sparsity bound `s ≤ t·(r-1)+2` independent
//! of `n`, and that the Corollary 5.8 cover-size criterion keeps holding
//! on the overlaid instances.

use crate::{Scale, Table};
use sc_comm::reduction_sec6::{overlay_to_isc, OrEqualPointerChasing, Sec6Instance};

/// Sweeps t (stacked instances) and n.
pub fn sparse_6_6(scale: Scale) -> Table {
    let mut t = Table::new(
        "E8 / Theorem 6.6 — sparse instances via OR_t(Equal Limited Pointer Chasing)",
        &[
            "n",
            "p",
            "t",
            "r",
            "bound s ≤ t(r-1)+2",
            "measured s",
            "|U|",
            "|F|",
            "overlay agrees",
            "promise ok",
        ],
    );

    // Lemma 6.5 needs t²·p·r^{p-1} < n/10, so n grows with t; and the
    // r-non-injectivity promise needs r above the max load of a random
    // function (≈ ln n / ln ln n plus slack), so r grows with n too.
    let configs: Vec<(usize, usize, usize, usize, usize)> = scale.pick(
        vec![(512, 2, 2, 9, 6), (2048, 2, 4, 9, 2)],
        vec![
            (512, 2, 2, 9, 30),
            (1024, 2, 2, 9, 30),
            (2048, 2, 4, 10, 20),
            (8192, 2, 8, 10, 8),
        ],
    );
    for (n, p, tt, r, trials) in configs {
        let mut agree = 0usize;
        let mut promise_ok = 0usize;
        let mut max_s = 0usize;
        let mut shape = (0usize, 0usize);
        for seed in 0..trials as u64 {
            let inst = Sec6Instance::random(n, p, tt, r, seed * 31 + 1);
            shape = (
                inst.reduction.system.universe(),
                inst.reduction.system.num_sets(),
            );
            if !inst.or_instance.any_r_non_injective() {
                promise_ok += 1;
                max_s = max_s.max(inst.max_set_size());
                assert!(
                    inst.max_set_size() <= inst.sparsity_bound(),
                    "sparsity bound violated: {} > {}",
                    inst.max_set_size(),
                    inst.sparsity_bound()
                );
            }
            // Overlay fidelity: compare ISC output with the plain OR.
            let or = OrEqualPointerChasing::random(n, p, tt, r, seed * 31 + 1);
            let plain = or.instances.iter().any(|e| e.output());
            let isc = overlay_to_isc(
                &or,
                (seed * 31 + 1).wrapping_mul(0x9e37_79b9).wrapping_add(1),
            );
            if isc.output() == plain || plain {
                // YES always maps to YES; NO may rarely flip (Lemma 6.5
                // error budget) — count exact agreement.
            }
            if isc.output() == plain {
                agree += 1;
            }
        }
        t.row(vec![
            n.to_string(),
            p.to_string(),
            tt.to_string(),
            r.to_string(),
            (tt * (r - 1) + 2).to_string(),
            max_s.to_string(),
            shape.0.to_string(),
            shape.1.to_string(),
            format!("{agree}/{trials}"),
            format!("{promise_ok}/{trials}"),
        ]);
    }
    t.note("sparsity grows with t (the stacked instances), not with n — the Ω̃(ms) regime of Theorem 6.6 at s ≈ t·r = Õ(t)");
    t.note("overlay disagreements are the Lemma 6.5 error events (spurious junction collisions); their rate is bounded by t²p·r^{p-1}/n");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsity_bound_holds_and_overlay_mostly_agrees() {
        let t = sparse_6_6(Scale::Quick);
        for row in &t.rows {
            let bound: usize = row[4].parse().unwrap();
            let measured: usize = row[5].parse().unwrap();
            assert!(measured <= bound, "{row:?}");
            assert!(measured > 0, "promise never held — r too small: {row:?}");
            let agree: Vec<usize> = row[8].split('/').map(|x| x.parse().unwrap()).collect();
            assert!(
                agree[0] * 10 >= agree[1] * 7,
                "overlay fidelity too low: {row:?}"
            );
        }
    }
}
