//! E17 — cover-query service: throughput and physical scans vs
//! concurrency.
//!
//! Not a paper artifact: this experiment tracks the serving layer's
//! scan sharing. `sc_service` admits concurrent queries into shared
//! scan epochs, so a group of queries costs the *maximum* of their
//! logical pass counts in physical repository scans rather than the
//! sum — the model's parallel-branch accounting
//! (`SetStream::absorb_parallel`), realised across independent
//! queries. Each query's own observables (cover, logical passes, space
//! peak) stay bit-identical to a solo run, pinned here by assertion and
//! in `sc-service`'s `service_equivalence` test. The headline columns
//! are physical scans (vs the `N ×` a non-batching server would pay)
//! and queries/second at concurrency 1 / 4 / 16, recorded in
//! `BENCH_service.json`.

use crate::{Scale, Table};
use sc_core::{IterSetCover, IterSetCoverConfig};
use sc_service::{QuerySpec, ServiceBuilder, ServiceConfig};
use sc_setsystem::gen;
use sc_stream::run_reported;

/// Runs identical `iterSetCover` queries at increasing concurrency
/// plus one mixed workload, measuring throughput and scan sharing.
pub fn service(scale: Scale) -> Table {
    let mut table = Table::new(
        "E17 — cover-query service: scan sharing and throughput vs concurrency",
        &[
            "workload",
            "clients",
            "physical scans",
            "naive scans",
            "sharing",
            "qps",
            "ms",
        ],
    );
    let (n, m, k) = scale.pick((1 << 12, 1 << 11, 16), (1 << 14, 1 << 13, 32));
    let inst = gen::planted(n, m, k, 42);
    let spec = QuerySpec::IterCover {
        delta: 0.5,
        seed: 7,
    };
    let mut solo_alg = IterSetCover::new(IterSetCoverConfig {
        delta: 0.5,
        seed: 7,
        ..Default::default()
    });
    let solo = run_reported(&mut solo_alg, &inst.system);
    assert!(solo.verified.is_ok());
    // Outcome cache off: this experiment measures *scan sharing*, so
    // every batch must actually run (the cache would answer the later
    // concurrency rows in zero scans — that effect is E18's subject).
    let service = ServiceBuilder::new()
        .config(ServiceConfig {
            cache_capacity: 0,
            ..Default::default()
        })
        .tenant("default", inst.system.clone())
        .build();

    for clients in [1usize, 4, 16] {
        let specs = vec![spec; clients];
        let (outcomes, metrics) = service.run_batch(&specs);
        for outcome in &outcomes {
            assert_eq!(outcome.cover, solo.cover, "service must match solo");
            assert_eq!(outcome.logical_passes, solo.passes);
            assert_eq!(outcome.space_words, solo.space_words);
        }
        let naive = clients * solo.passes;
        table.row(vec![
            "identical iter δ=0.5".into(),
            clients.to_string(),
            metrics.physical_scans.to_string(),
            naive.to_string(),
            format!(
                "{:.1}x",
                naive as f64 / metrics.physical_scans.max(1) as f64
            ),
            format!(
                "{:.1}",
                clients as f64 / metrics.elapsed.as_secs_f64().max(1e-9)
            ),
            format!("{:.1}", metrics.elapsed.as_secs_f64() * 1e3),
        ]);
    }

    // Mixed tenants: the group still costs its max, not its sum.
    let mixed: Vec<QuerySpec> = (0..12)
        .map(|i| match i % 3 {
            0 => QuerySpec::IterCover {
                delta: 0.5,
                seed: i,
            },
            1 => QuerySpec::PartialCover {
                epsilon: 0.2,
                delta: 0.5,
                seed: i,
            },
            _ => QuerySpec::GreedyBaseline,
        })
        .collect();
    let (outcomes, metrics) = service.run_batch(&mixed);
    let max_passes = outcomes.iter().map(|o| o.logical_passes).max().unwrap();
    let sum_passes: usize = outcomes.iter().map(|o| o.logical_passes).sum();
    assert_eq!(metrics.physical_scans, max_passes);
    table.row(vec![
        "mixed iter/partial/greedy".into(),
        mixed.len().to_string(),
        metrics.physical_scans.to_string(),
        sum_passes.to_string(),
        format!(
            "{:.1}x",
            sum_passes as f64 / metrics.physical_scans.max(1) as f64
        ),
        format!(
            "{:.1}",
            mixed.len() as f64 / metrics.elapsed.as_secs_f64().max(1e-9)
        ),
        format!("{:.1}", metrics.elapsed.as_secs_f64() * 1e3),
    ]);

    table.note(format!(
        "planted n={n}, m={m}, k={k}; solo iterSetCover(δ=0.5): {} logical passes",
        solo.passes
    ));
    table.note("naive scans = what a server running each query's scans separately would pay");
    table.note("every outcome is asserted bit-identical to its solo run (cover, passes, space)");
    table
}
