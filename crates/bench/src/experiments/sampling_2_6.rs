//! E3 — sampling diagnostics behind Lemmas 2.3 and 2.6.
//!
//! Two measured claims:
//!
//! * **Lemma 2.3** (size-test soundness): a set of true size below
//!   `|U|/(c·k)` almost never passes the `|r ∩ S| ≥ |S|/k` size test.
//!   We plant small sets and count false-heavy events over many sample
//!   draws.
//! * **Lemma 2.6** (residual decay): each iteration of the correct-`k`
//!   branch shrinks the uncovered set by roughly `n^δ`. We read the
//!   per-iteration traces of a real run.

use crate::table::fmt_ratio;
use crate::{Scale, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_bitset::BitSet;
use sc_core::sampling::sample_from_bitset;
use sc_core::{IterSetCover, IterSetCoverConfig};
use sc_setsystem::gen;
use sc_stream::run_reported;

/// Runs both diagnostics.
pub fn sampling_2_6(scale: Scale) -> Table {
    let mut t = Table::new(
        "E3 / Lemmas 2.3 & 2.6 — size test soundness and residual decay",
        &["quantity", "parameters", "measured", "analytic reference"],
    );

    // --- Lemma 2.3: false-heavy rate. -------------------------------
    let n = scale.pick(1024, 8192);
    let k = 16usize;
    let c = 2.0;
    let trials = scale.pick(150, 2000);
    let sample_size = ((k as f64) * (n as f64).sqrt()) as usize; // δ = 1/2 regime
    let threshold = sample_size as f64 / k as f64;
    let small_size = (n as f64 / (c * k as f64)) as usize;

    let mut rng = StdRng::seed_from_u64(99);
    let live = BitSet::full(n);
    // A fixed "small" set: the first small_size elements (uniform
    // sampling makes the choice irrelevant).
    let small: Vec<u32> = (0..small_size as u32).collect();
    let mut false_heavy = 0usize;
    for _ in 0..trials {
        let sample = sample_from_bitset(&live, sample_size, &mut rng);
        let hit = sample
            .iter()
            .filter(|&&e| (e as usize) < small_size)
            .count();
        if hit as f64 >= threshold {
            false_heavy += 1;
        }
    }
    t.row(vec![
        "false-heavy rate (Lemma 2.3)".into(),
        format!("n={n}, k={k}, |r|=n/(c·k) with c={c}, |S|={sample_size}, {trials} draws"),
        format!("{false_heavy}/{trials}"),
        "→ 0 (w.p. ≥ 1 − m^-c the size test only passes sets of size ≥ |U|/(ck))".into(),
    ]);
    let _ = small;

    // --- Lemma 2.6: residual decay. ----------------------------------
    let (n2, m2, k2) = scale.pick((512, 512, 4), (4096, 4096, 8));
    let delta = 0.25;
    let inst = gen::planted(n2, m2, k2, 3);
    let mut alg = IterSetCover::new(IterSetCoverConfig {
        delta,
        ..Default::default()
    });
    let r = run_reported(&mut alg, &inst.system);
    assert!(r.verified.is_ok());
    // Traces of the correct guess band: k2 ≤ k < 2·k2.
    let correct_k = k2.next_power_of_two();
    let shrink_target = (n2 as f64).powf(delta);
    for tr in alg.traces.iter().filter(|tr| tr.k == correct_k) {
        let shrink = if tr.uncovered_after > 0 {
            tr.uncovered_before as f64 / tr.uncovered_after as f64
        } else {
            f64::INFINITY
        };
        t.row(vec![
            format!("residual decay, iteration {}", tr.iteration),
            format!(
                "k={}, |S|={}, heavy={}, stored={}, offline={}",
                tr.k, tr.sample_size, tr.heavy_picked, tr.small_stored, tr.offline_picked
            ),
            format!(
                "{} → {} (×{})",
                tr.uncovered_before,
                tr.uncovered_after,
                fmt_ratio(shrink)
            ),
            format!("×n^δ = {:.1} per iteration (Lemma 2.6)", shrink_target),
        ]);
    }
    t.note("the decay factor approaches its analytic value once the sample is a strict subset of the residual; early iterations where |S| = |U| finish immediately");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn false_heavy_rate_is_negligible_and_decay_observed() {
        let t = sampling_2_6(Scale::Quick);
        let fh = &t.rows[0][2];
        let hits: usize = fh.split('/').next().unwrap().parse().unwrap();
        let trials: usize = fh.split('/').nth(1).unwrap().parse().unwrap();
        assert!(
            (hits as f64) < 0.02 * trials as f64,
            "false-heavy rate too high: {fh}"
        );
        assert!(t.rows.len() >= 2, "no decay traces for the correct guess");
    }
}
