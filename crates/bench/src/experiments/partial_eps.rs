//! E11 — ε-Partial Set Cover (the \[ER14\]/\[CW16\] generalisation the
//! paper discusses in Section 1).
//!
//! Covering only a `(1-ε)` fraction is *cheaper* for `iterSetCover` in
//! a quantifiable way: the iteration count needed falls to
//! `⌈log(1/ε)/(δ·log n)⌉`, so both passes and solution size shrink as ε
//! grows — this sweep measures that curve.

use crate::table::fmt_count;
use crate::{Scale, Table};
use sc_core::partial::{
    run_partial, PartialChakrabartiWirth, PartialEmekRosen, PartialIterSetCover,
    PartialProgressiveGreedy,
};
use sc_core::IterSetCoverConfig;
use sc_setsystem::gen;

/// Sweeps ε for the partial-cover algorithms.
pub fn partial_eps(scale: Scale) -> Table {
    let (n, m, k) = scale.pick((512, 512, 8), (4096, 4096, 16));
    let inst = gen::planted(n, m, k, 13);
    let opt = inst.planted.as_ref().unwrap().len();
    let mut t = Table::new(
        format!("E11 / ε-Partial Set Cover on planted(n={n}, m={m}, OPT={k})"),
        &[
            "algorithm",
            "ε",
            "required",
            "covered",
            "|sol|",
            "ratio vs full OPT",
            "passes",
            "space (words)",
        ],
    );

    for eps in [0.0, 0.05, 0.1, 0.25, 0.5] {
        let mut alg = PartialIterSetCover::new(IterSetCoverConfig {
            delta: 0.25,
            ..Default::default()
        });
        let r = run_partial(&mut alg, &inst.system, eps);
        assert!(r.goal_met(), "ε={eps}: {}/{}", r.covered, r.required);
        t.row(vec![
            r.algorithm.clone(),
            format!("{eps:.2}"),
            fmt_count(r.required),
            fmt_count(r.covered),
            r.cover_size().to_string(),
            format!("{:.2}", r.cover_size() as f64 / opt as f64),
            r.passes.to_string(),
            fmt_count(r.space_words),
        ]);
    }
    // The semi-streaming baselines the paper says extend to ε-partial:
    // [ER14] (one pass) and [CW16] (p passes), plus progressive greedy.
    for eps in [0.0, 0.25] {
        let mut er = PartialEmekRosen;
        let mut cw = PartialChakrabartiWirth { passes: 3 };
        let mut pg = PartialProgressiveGreedy;
        let algs: Vec<&mut dyn sc_core::partial::PartialStreamingSetCover> =
            vec![&mut er, &mut cw, &mut pg];
        for alg in algs {
            let r = run_partial(alg, &inst.system, eps);
            assert!(r.goal_met(), "{} ε={eps}", r.algorithm);
            t.row(vec![
                r.algorithm.clone(),
                format!("{eps:.2}"),
                fmt_count(r.required),
                fmt_count(r.covered),
                r.cover_size().to_string(),
                format!("{:.2}", r.cover_size() as f64 / opt as f64),
                r.passes.to_string(),
                fmt_count(r.space_words),
            ]);
        }
    }
    t.note("the ε-Partial problem compares against the optimal FULL cover (Section 1 of the paper), so ratios can drop below 1 for large ε");
    t.note("passes fall with ε: the iteration budget ⌈log(1/ε)/(δ·log n)⌉ truncates the Figure 1.3 loop");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goal_always_met_and_costs_monotone_in_eps() {
        let t = partial_eps(Scale::Quick);
        // iterSetCover rows are the first five; sizes non-increasing.
        let sizes: Vec<usize> = t.rows[..5].iter().map(|r| r[4].parse().unwrap()).collect();
        assert!(
            sizes.windows(2).all(|w| w[1] <= w[0] + 1),
            "sizes not monotone-ish: {sizes:?}"
        );
        let passes: Vec<usize> = t.rows[..5].iter().map(|r| r[6].parse().unwrap()).collect();
        assert!(
            passes.last().unwrap() <= passes.first().unwrap(),
            "ε=0.5 should need no more passes than ε=0: {passes:?}"
        );
    }
}
