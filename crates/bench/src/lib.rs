//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each submodule of [`experiments`] owns one experiment id from
//! DESIGN.md's per-experiment index (E1–E15) and produces a [`Table`]
//! of measured values next to the paper's analytic predictions. The
//! `repro` binary prints them all; the criterion benches under
//! `benches/` time the underlying computations.
//!
//! Every experiment accepts a [`Scale`] so that tests can run a reduced
//! sweep while the binary runs the full one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod experiments;
pub mod table;

pub use table::Table;

/// Sweep size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced parameters: seconds, used by tests and smoke runs.
    Quick,
    /// The full sweeps reported in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Picks `q` under `Quick` and `f` under `Full`.
    pub fn pick<T>(self, q: T, f: T) -> T {
        match self {
            Scale::Quick => q,
            Scale::Full => f,
        }
    }
}
