//! Minimal fixed-width text tables for experiment reports.

use std::fmt;

/// A titled table of string cells, printed with aligned columns.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title line, e.g. `"E1 / Figure 1.1 — summary table"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Starts an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a footnote.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {:<width$} |", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Formats a ratio with two decimals.
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a large count with thousands separators.
pub fn fmt_count(x: usize) -> String {
    let s = x.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["alg", "passes"]);
        t.row(vec!["iterSetCover".into(), "4".into()]);
        t.row(vec!["greedy".into(), "1".into()]);
        t.note("model-counted passes");
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("| iterSetCover | 4      |"));
        assert!(s.contains("note: model-counted passes"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(1), "1");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(1234567), "1,234,567");
        assert_eq!(fmt_ratio(1.5), "1.50");
    }
}
