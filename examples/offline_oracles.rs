//! The four `algOfflineSC` oracles side by side, plus the instant OPT
//! sandwich their certificates give you.
//!
//! The paper parameterises every bound by the offline oracle quality ρ
//! (Theorem 2.8: approximation `O(ρ/δ)`). This example runs all four
//! oracles on the same instance — greedy (ρ = ln n), exact
//! branch-and-bound (ρ = 1), primal–dual (ρ = f), LP rounding
//! (ρ = O(log n)) — and shows how the primal–dual witness and the LP
//! fractional value bracket OPT *without* the exponential solver.
//!
//! ```text
//! cargo run --example offline_oracles --release
//! ```

use streaming_set_cover::bitset::BitSet;
use streaming_set_cover::offline;
use streaming_set_cover::prelude::*;

fn main() {
    // A noisy planted instance: 12 true sets plus overlapping decoys,
    // so the oracles genuinely disagree.
    let inst = gen::planted_noisy(1024, 768, 12, 21);
    let sets = inst.system.all_bitsets();
    let n = inst.system.universe();
    let target = BitSet::full(n);
    println!("instance: {} (n = {n}, m = {})\n", inst.label, sets.len());

    // --- Certificates first: the cheap OPT sandwich. ------------------
    let pd = offline::primal_dual(&sets, &target).expect("coverable");
    let frac = offline::fractional_mwu(&sets, &target, offline::lp::default_rounds(n), 0.5)
        .expect("coverable");
    println!("certificates (near-linear time):");
    println!("  dual witness      : OPT ≥ {}", pd.witness.len());
    println!(
        "  LP fractional     : OPT ≥ ⌈{:.2}⌉ (value of the relaxation)",
        frac.value
    );
    println!("  max frequency f   : {}", pd.max_frequency);

    // --- The four oracles. --------------------------------------------
    println!("\noracle runs:");
    for solver in [
        OfflineSolver::Greedy,
        OfflineSolver::DEFAULT_EXACT,
        OfflineSolver::PrimalDual,
        OfflineSolver::LpRound { seed: 42 },
    ] {
        let cover = solver.solve(&sets, &target).expect("coverable");
        println!(
            "  {:<12} |cover| = {:<4} (ρ guarantee on this n: {:.1})",
            solver.label(),
            cover.len(),
            solver.rho(n)
        );
    }

    // --- And the effect inside iterSetCover (Theorem 2.8's O(ρ/δ)). ---
    println!("\niterSetCover(δ=1/2) with each oracle:");
    for solver in [OfflineSolver::Greedy, OfflineSolver::DEFAULT_EXACT] {
        let mut alg = IterSetCover::new(IterSetCoverConfig {
            solver,
            ..Default::default()
        });
        let report = run_reported(&mut alg, &inst.system);
        report.verified.as_ref().expect("verified");
        println!(
            "  ρ = {:<7} → |sol| = {:<4} passes = {} space = {} words",
            solver.label(),
            report.cover_size(),
            report.passes,
            report.space_words
        );
    }
}
