//! ε-Partial Set Cover: when covering 90% of the universe is enough,
//! how much cheaper does streaming coverage get?
//!
//! ```text
//! cargo run --example partial_coverage --release
//! ```

use streaming_set_cover::prelude::*;

fn main() {
    // A monitoring scenario: 4,096 network segments, 4,096 candidate
    // probe placements, and an SLA that tolerates 10% blind spots.
    let inst = gen::planted_noisy(4096, 4096, 24, 11);
    println!("instance: {}\n", inst.label);
    println!(
        "{:<42} {:>5} {:>9} {:>8} {:>7} {:>12}",
        "algorithm", "ε", "covered", "|sol|", "passes", "space(words)"
    );

    for eps in [0.0, 0.02, 0.1, 0.3] {
        let mut alg = PartialIterSetCover::new(IterSetCoverConfig {
            delta: 0.25,
            ..Default::default()
        });
        let r = run_partial(&mut alg, &inst.system, eps);
        assert!(r.goal_met(), "SLA missed at ε={eps}");
        println!(
            "{:<42} {:>5.2} {:>9} {:>8} {:>7} {:>12}",
            r.algorithm,
            eps,
            r.covered,
            r.cover_size(),
            r.passes,
            r.space_words
        );
    }
    println!();
    for eps in [0.0, 0.1] {
        let mut alg = PartialProgressiveGreedy;
        let r = run_partial(&mut alg, &inst.system, eps);
        println!(
            "{:<42} {:>5.2} {:>9} {:>8} {:>7} {:>12}",
            r.algorithm,
            eps,
            r.covered,
            r.cover_size(),
            r.passes,
            r.space_words
        );
    }

    println!("\nreading: the last few percent of coverage cost the most sets and");
    println!("passes — relaxing ε truncates the iterSetCover loop early (E11).");
}
