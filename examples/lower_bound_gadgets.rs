//! Touring the lower-bound machinery: decode Alice's sets from
//! disjointness answers (Section 3), and watch an Intersection Set
//! Chasing instance turn into a Set Cover instance whose optimum
//! encodes the ISC answer (Section 5).
//!
//! ```text
//! cargo run --example lower_bound_gadgets --release
//! ```

use streaming_set_cover::comm::chasing::IntersectionSetChasing;
use streaming_set_cover::comm::disjointness::AliceInput;
use streaming_set_cover::comm::recover::{recover, RecoverConfig};
use streaming_set_cover::comm::reduction_sec5::{reduce, verify_corollary_5_8};

fn main() {
    // --- Section 3: the Ω(mn) one-pass bound's engine. ---------------
    let (m, n) = (16, 64);
    let alice = AliceInput::random(n, m, 5);
    println!(
        "Alice holds {m} random subsets of a {n}-element universe: {} bits",
        alice.description_bits()
    );
    let out = recover(&alice, &RecoverConfig::default());
    println!(
        "algRecoverBit: {} — {} probes, {} oracle queries, {} collision probes",
        if out.exact {
            "recovered every set exactly"
        } else {
            "FAILED"
        },
        out.probes,
        out.oracle_queries,
        out.collision_probes,
    );
    println!(
        "⇒ any one-round protocol answering those queries carries all {} bits (Theorem 3.2),",
        alice.description_bits()
    );
    println!("  so a one-pass streaming algorithm distinguishing covers of size 2 vs 3 needs Ω(mn) memory (Theorem 3.8).\n");

    // --- Section 5: the multi-pass bound's reduction. -----------------
    for seed in 0..4 {
        let isc = IntersectionSetChasing::random(5, 2, 2, seed);
        let red = reduce(&isc);
        let v = verify_corollary_5_8(&isc, 50_000_000);
        println!(
            "ISC(n=5, p=2) seed {seed}: output = {}, reduced to SetCover(|U| = {}, |F| = {}), exact OPT = {} ({} expected {})",
            v.isc_output as u8,
            red.system.universe(),
            red.system.num_sets(),
            v.opt,
            if v.holds { "✓" } else { "✗" },
            if v.isc_output { v.yes_size } else { v.yes_size + 1 },
        );
    }
    println!("\n⇒ a (1/2δ−1)-pass exact streaming algorithm would answer ISC through this");
    println!("  reduction, so [GO13]'s communication bound forces Ω̃(mn^δ) memory (Theorem 5.4).");
}
