//! The on-disk repository workflow: generate once, store compactly,
//! scan in bounded memory, and trust the checksums.
//!
//! The streaming model's "read-only repository" is a file in practice.
//! This example writes an instance in both the text and `SCB1` binary
//! formats, compares their sizes, scans the binary file one record at a
//! time (peak memory `O(max |r|)`), and demonstrates that a flipped bit
//! is caught at the damaged record instead of corrupting an experiment.
//!
//! ```text
//! cargo run --example binary_repository --release
//! ```

use streaming_set_cover::prelude::*;
use streaming_set_cover::setsystem::{binary, io as scio};

fn main() {
    let inst = gen::planted(4096, 8192, 16, 3);
    println!(
        "instance: {} (Σ|r| = {} incidences)\n",
        inst.label,
        inst.system.total_size()
    );

    // --- Write both formats. ------------------------------------------
    let text = scio::to_string(&inst).into_bytes();
    let mut bin = Vec::new();
    binary::write_instance_binary(&mut bin, &inst).expect("in-memory write");
    println!("text format : {:>9} bytes", text.len());
    println!(
        "SCB1 binary : {:>9} bytes ({:.1}× smaller, ~{:.2} bytes/incidence)\n",
        bin.len(),
        text.len() as f64 / bin.len() as f64,
        bin.len() as f64 / inst.system.total_size() as f64
    );

    // --- Bounded-memory scan: one record at a time. --------------------
    let mut reader = binary::BinaryReader::new(&bin[..]).expect("valid header");
    let mut buf = Vec::new();
    let mut largest = 0usize;
    let mut heavy = 0usize;
    let threshold = reader.universe() / 16;
    while reader.next_set(&mut buf).expect("clean records").is_some() {
        largest = largest.max(buf.len());
        if buf.len() >= threshold {
            heavy += 1;
        }
    }
    let (planted, label) = reader.finish().expect("clean footer");
    println!(
        "scanned {} sets in O(max |r|) = O({largest}) memory",
        inst.system.num_sets()
    );
    println!("sets with ≥ n/16 elements: {heavy}");
    println!(
        "footer: planted cover of {:?} sets, label {label:?}\n",
        planted.map(|p| p.len())
    );

    // --- Corruption is caught, loudly and locatedly. --------------------
    let mut damaged = bin.clone();
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0x10;
    match binary::read_instance_binary(&damaged[..]) {
        Err(e) => println!("flipped one bit at byte {mid}: {e}"),
        Ok(_) => unreachable!("header, records, and footer are all checksummed"),
    }

    // --- Round trip fidelity. ------------------------------------------
    let back = binary::read_instance_binary(&bin[..]).expect("round trip");
    assert_eq!(back.system.num_sets(), inst.system.num_sets());
    for (id, elems) in inst.system.iter() {
        assert_eq!(back.system.set(id), elems);
    }
    println!("round trip verified: every set identical");
}
