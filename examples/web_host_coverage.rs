//! A topic-coverage scenario from the paper's motivation (blog/web-host
//! analysis, [SG09]/[CKT10]): pick few "hosts" (sets) covering all
//! "topics" (elements) when host sizes follow a power law, under
//! different pass budgets.
//!
//! ```text
//! cargo run --example web_host_coverage --release
//! ```

use streaming_set_cover::prelude::*;

fn main() {
    // Power-law host sizes: a handful of giant aggregators and a long
    // tail of tiny hosts — the workload shape of web data. The largest
    // host covers at most 1/8 of the topics, so a real cover is needed.
    let inst = gen::zipf(4096, 2048, 1.1, 512, 21);
    let n = inst.system.universe();
    let m = inst.system.num_sets();
    println!(
        "workload: {} (n = {n}, m = {m}, Σ|r| = {})\n",
        inst.label,
        inst.system.total_size()
    );

    // Reference optimum (greedy offline bound is enough for a ratio
    // denominator here; the planted field is None for zipf).
    let offline = {
        let sets = inst.system.all_bitsets();
        let target = sc_bitset::BitSet::full(n);
        sc_offline::greedy(&sets, &target).expect("coverable").len()
    };
    println!("offline greedy reference: {offline} hosts\n");
    println!(
        "{:<44} {:>6} {:>7} {:>12}",
        "algorithm", "|sol|", "passes", "space(words)"
    );

    let report = |r: RunReport| {
        assert!(r.verified.is_ok(), "{:?}", r.verified);
        println!(
            "{:<44} {:>6} {:>7} {:>12}",
            r.algorithm,
            r.cover_size(),
            r.passes,
            r.space_words
        );
    };

    // One pass only? The √n-approximation is what one pass buys
    // sublinearly (Theorem 3.8 says a good one-pass answer costs Ω(mn)).
    report(run_reported(&mut EmekRosen, &inst.system));
    report(run_reported(&mut StoreAllGreedy, &inst.system));

    // A few passes: the descending-threshold trade-off.
    for p in [2, 4] {
        report(run_reported(&mut ChakrabartiWirth::new(p), &inst.system));
    }

    // The paper's trade-off: log-quality with sublinear memory.
    for delta in [0.5, 0.25] {
        let mut alg = IterSetCover::new(IterSetCoverConfig {
            delta,
            ..Default::default()
        });
        report(run_reported(&mut alg, &inst.system));
    }

    println!("\nreading: one pass is cheap but coarse; 4–8 passes with Õ(m·n^δ) memory");
    println!("recovers near-greedy quality without ever storing the input (Theorem 2.8).");
}
