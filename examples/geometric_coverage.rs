//! Base-station placement as geometric set cover: clients are points in
//! the plane, candidate stations are discs, and the stream of candidate
//! discs is too long to store — the Section 4 setting.
//!
//! ```text
//! cargo run --example geometric_coverage --release
//! ```

use streaming_set_cover::geometry::{instances, AlgGeomSc, AlgGeomScConfig};
use streaming_set_cover::prelude::*;

fn main() {
    // 2,000 clients clustered around 12 hotspots; 1,000 candidate discs
    // (the 12 planted ones hidden among random proposals).
    let inst = instances::random_discs(2000, 1000, 12, 3);
    let opt = inst.planted.as_ref().unwrap().len();
    println!(
        "clients = {}, candidate discs = {}, OPT ≤ {opt}\n",
        inst.points.len(),
        inst.shapes.len()
    );

    // algGeomSC: Õ(n) memory, constant passes (Theorem 4.6).
    let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
    let r = alg.run(&inst);
    r.verified.as_ref().expect("cover verified");
    println!(
        "algGeomSC      : {} stations, {} passes, {} words, store ≤ {} candidates",
        r.cover_size(),
        r.passes,
        r.space_words,
        r.max_store_candidates
    );

    // The offline view (materialise the whole point-in-disc incidence —
    // exactly what the streaming algorithm avoids) for comparison.
    let system = inst.to_set_system();
    let mut offline = StoreAllGreedy;
    let off = run_reported(&mut offline, &system);
    println!(
        "offline greedy : {} stations, space {} words (stores the incidence)",
        off.cover_size(),
        off.space_words
    );

    // Skewed spatial textures: Gaussian demand clusters and a jittered
    // lattice — the workloads where shallow projections pile up.
    for inst in [
        instances::clustered_discs(2000, 1000, 12, 4),
        instances::grid_rects(2025, 1000, 4),
    ] {
        let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
        let r = alg.run(&inst);
        r.verified.as_ref().expect("cover verified");
        println!(
            "{:<15}: {} stations, {} passes, {} words",
            inst.label.split('(').next().unwrap(),
            r.cover_size(),
            r.passes,
            r.space_words
        );
    }

    // The Figure 1.2 adversarial family: quadratically many distinct
    // two-client rectangles. Canonical pieces keep memory near-linear.
    let adv = instances::two_line(64, None, 5);
    let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
    let r = alg.run(&adv);
    r.verified.as_ref().expect("adversarial cover verified");
    println!(
        "\ntwo-line adversarial family: m = {} rectangles over n = {} points",
        adv.shapes.len(),
        adv.points.len()
    );
    println!(
        "algGeomSC      : {} rects, {} passes, {} words (≪ m)",
        r.cover_size(),
        r.passes,
        r.space_words
    );
}
