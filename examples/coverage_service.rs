//! The concurrent cover-query service: many tenants, one repository,
//! shared physical scans.
//!
//! ```text
//! cargo run --release --example coverage_service
//! ```
//!
//! Spawns a few client threads that submit a mix of full, partial, and
//! baseline cover queries against one planted repository, then prints
//! each outcome next to the service-wide scan accounting. The point to
//! look for: *physical scans* stays near the pass count of a single
//! query while the *sum* of per-query logical passes grows with the
//! number of tenants — the streaming model's parallel-branch accounting
//! (`max`, not `sum`), realised across independent queries.

use streaming_set_cover::prelude::*;
use streaming_set_cover::service::ServiceConfig;

fn main() {
    let inst = gen::planted(4096, 2048, 16, 42);
    println!(
        "repository: {} (n={}, m={})\n",
        inst.label,
        inst.system.universe(),
        inst.system.num_sets()
    );
    let service = Service::new(inst.system, ServiceConfig::default());

    // Three tenants, each with its own workload mix, submitting
    // concurrently through clones of the service handle.
    let clients: u64 = 3;
    let per_client: u64 = 4;
    let (outcomes, metrics) = service.serve(|handle| {
        std::thread::scope(|s| {
            let workers: Vec<_> = (0..clients)
                .map(|c| {
                    let handle = handle.clone();
                    s.spawn(move || {
                        let tickets: Vec<_> = (0..per_client)
                            .map(|q| {
                                let spec = match (c + q) % 3 {
                                    0 => QuerySpec::IterCover {
                                        delta: 0.5,
                                        seed: c * 100 + q,
                                    },
                                    1 => QuerySpec::PartialCover {
                                        epsilon: 0.2,
                                        delta: 0.5,
                                        seed: c * 100 + q,
                                    },
                                    _ => QuerySpec::GreedyBaseline,
                                };
                                handle.submit(spec).expect("service open")
                            })
                            .collect();
                        tickets
                            .into_iter()
                            .map(|t| t.wait().expect("query served"))
                            .collect::<Vec<QueryOutcome>>()
                    })
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("client thread"))
                .collect::<Vec<QueryOutcome>>()
        })
    });

    let mut outcomes = outcomes;
    outcomes.sort_by_key(|o| o.id);
    for o in &outcomes {
        println!("{}", o.protocol_line());
    }
    let logical: usize = outcomes.iter().map(|o| o.logical_passes).sum();
    println!(
        "\n{} queries: {} logical passes served by {} physical scans ({:.1}x sharing), peak {} inflight, {:.1} ms",
        metrics.queries_completed,
        logical,
        metrics.physical_scans,
        logical as f64 / metrics.physical_scans.max(1) as f64,
        metrics.max_inflight_seen,
        metrics.elapsed.as_secs_f64() * 1e3,
    );
}
