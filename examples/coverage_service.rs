//! The concurrent cover-query service: many clients, named
//! repositories, shared physical scans.
//!
//! ```text
//! cargo run --release --example coverage_service
//! ```
//!
//! Act 1 spawns a few client threads that submit a mix of full,
//! partial, and baseline cover queries against one planted repository,
//! then prints each outcome next to the service-wide scan accounting.
//! The point to look for: *physical scans* stays near the pass count
//! of a single query while the *sum* of per-query logical passes grows
//! with the number of clients — the streaming model's parallel-branch
//! accounting (`max`, not `sum`), realised across independent queries.
//!
//! Act 2 serves the same process over TCP — the exact server
//! `sctool serve --listen` runs (`sc_service::net::serve_tcp`) — and
//! probes readiness with `net::wait_ready` (what `sctool client
//! --wait-ready` uses) instead of a `/dev/tcp` retry loop, then speaks
//! the line protocol over a socket: the repeated query is answered
//! from the outcome cache (`cached=1` in its protocol line, zero
//! physical scans), a `repo=` token routes one query at the *second*
//! named repository the builder registered, and `!repos` lists both
//! tenants before the listener shuts down.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;
use streaming_set_cover::prelude::*;
use streaming_set_cover::service::net;

fn main() {
    let inst = gen::planted(4096, 2048, 16, 42);
    let aux = gen::planted(512, 256, 8, 7);
    println!(
        "repository: {} (n={}, m={})\n",
        inst.label,
        inst.system.universe(),
        inst.system.num_sets()
    );
    // One process, two named repositories: "planted" (the default —
    // everything unaddressed lands there) and a smaller "aux" tenant
    // the TCP act addresses by name.
    let service = ServiceBuilder::new()
        .tenant("planted", inst.system)
        .tenant("aux", aux.system)
        .build();

    // Three tenants, each with its own workload mix, submitting
    // concurrently through clones of the service handle.
    let clients: u64 = 3;
    let per_client: u64 = 4;
    let (outcomes, metrics) = service.serve(|handle| {
        std::thread::scope(|s| {
            let workers: Vec<_> = (0..clients)
                .map(|c| {
                    let handle = handle.clone();
                    s.spawn(move || {
                        let tickets: Vec<_> = (0..per_client)
                            .map(|q| {
                                let spec = match (c + q) % 3 {
                                    0 => QuerySpec::IterCover {
                                        delta: 0.5,
                                        seed: c * 100 + q,
                                    },
                                    1 => QuerySpec::PartialCover {
                                        epsilon: 0.2,
                                        delta: 0.5,
                                        seed: c * 100 + q,
                                    },
                                    _ => QuerySpec::GreedyBaseline,
                                };
                                handle.submit(spec).expect("service open")
                            })
                            .collect();
                        tickets
                            .into_iter()
                            .map(|t| t.wait().expect("query served"))
                            .collect::<Vec<QueryOutcome>>()
                    })
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("client thread"))
                .collect::<Vec<QueryOutcome>>()
        })
    });

    let mut outcomes = outcomes;
    outcomes.sort_by_key(|o| o.id);
    for o in &outcomes {
        println!("{}", o.protocol_line());
    }
    let logical: usize = outcomes.iter().map(|o| o.logical_passes).sum();
    println!(
        "\n{} queries ({} cache hits, {} mid-stream joins): {} logical passes served by {} physical scans ({:.1}x sharing), peak {} inflight, {:.1} ms",
        metrics.queries_completed,
        metrics.cache_hits,
        metrics.mid_stream_admissions,
        logical,
        metrics.physical_scans,
        logical as f64 / metrics.physical_scans.max(1) as f64,
        metrics.max_inflight_seen,
        metrics.elapsed.as_secs_f64() * 1e3,
    );
    println!("queue wait {}", metrics.queue_wait);
    println!("latency    {}", metrics.latency);

    // Act 2: the same service over TCP — the server `sctool serve
    // --listen` runs, with `wait_ready` replacing shell readiness
    // polling. Port 0 lets the OS pick a free port.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    println!("\nTCP act: serving on {addr}");
    std::thread::scope(|s| {
        let server = s.spawn(|| net::serve_tcp(&service, listener).expect("serve_tcp"));
        net::wait_ready(&addr, Duration::from_secs(10)).expect("server ready");
        let conn = TcpStream::connect(&addr).expect("connect");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut writer = &conn;
        // The same iter spec twice, the repeat sent only after the
        // first reply: the second response comes back cached=1,
        // straight from the outcome cache, in zero physical scans.
        let mut line = String::new();
        for _ in 0..2 {
            writeln!(writer, "iter delta=0.5 seed=1").expect("send");
            writer.flush().expect("flush");
            line.clear();
            reader.read_line(&mut line).expect("reply");
            println!("tcp reply: {}", line.trim_end());
        }
        // A `repo=` token addresses the second tenant for one query
        // (its reply reports `repo=aux`); `!repos` lists both tenants
        // with generation, fingerprint, quota, and live counters.
        writeln!(writer, "greedy repo=aux").expect("send");
        writeln!(writer, "!repos").expect("send");
        writer.flush().expect("flush");
        for _ in 0..4 {
            line.clear();
            reader.read_line(&mut line).expect("reply");
            println!("tcp reply: {}", line.trim_end());
        }
        writeln!(writer, "shutdown").expect("send");
        writer.flush().expect("flush");
        let tcp_metrics = server.join().expect("server thread");
        println!(
            "tcp act: {} queries, {} cache hits, {} physical scans",
            tcp_metrics.queries_completed, tcp_metrics.cache_hits, tcp_metrics.physical_scans,
        );
    });
}
