//! Quickstart: cover a planted instance with `iterSetCover` and read
//! the measured pass/space/quality report.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use streaming_set_cover::prelude::*;

fn main() {
    // A ground set of 2,048 elements covered by 4 planted sets, hidden
    // among 4,096 decoys. `OPT = 4` by construction.
    let inst = gen::planted(2048, 4096, 4, 7);
    let opt = inst.planted.as_ref().expect("planted cover").len();
    println!(
        "instance: {}  (n = {}, m = {}, OPT = {opt})",
        inst.label,
        inst.system.universe(),
        inst.system.num_sets()
    );
    println!(
        "input size Σ|r| = {} incidences\n",
        inst.system.total_size()
    );

    // The paper's algorithm at δ = 1/2: 2/δ = 4 passes, Õ(m·√n) space.
    let mut alg = IterSetCover::new(IterSetCoverConfig::default());
    let report = run_reported(&mut alg, &inst.system);

    println!("{report}");
    println!();
    println!(
        "cover size     : {} sets (ratio {:.2}× OPT)",
        report.cover_size(),
        report.ratio(opt)
    );
    println!(
        "passes         : {} (budget 2/δ = 4, +1 cleanup)",
        report.passes
    );
    println!(
        "working memory : {} words — versus {} words for this input (Σ|r|/2) and {} for a worst-case m×n input",
        report.space_words,
        inst.system.total_size() / 2,
        inst.system.num_sets() * inst.system.universe() / 2,
    );
    report.verified.as_ref().expect("verified cover");

    // Tighter space at the cost of more passes: δ = 1/4.
    let mut alg = IterSetCover::new(IterSetCoverConfig {
        delta: 0.25,
        ..Default::default()
    });
    let report = run_reported(&mut alg, &inst.system);
    println!(
        "\nδ = 1/4 → passes = {}, space = {} words",
        report.passes, report.space_words
    );
}
