//! ε-nets and the reweighting solver: the geometric machinery of
//! Section 4, run end to end.
//!
//! Draws Haussler–Welzl ε-nets for points vs discs, *measures* their
//! failure rate against the exhaustive verifier, then lets the
//! Brönnimann–Goodrich loop (the Remark 4.7 offline oracle) solve a
//! geometric cover without ever materialising the O(mn) incidence
//! matrix — and compares it with the streaming `algGeomSC`.
//!
//! ```text
//! cargo run --example epsilon_nets --release
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use streaming_set_cover::geometry::epsilon_net::{
    net_sample_size, sample_epsilon_net, verify_epsilon_net, ShapeFamily,
};
use streaming_set_cover::geometry::instances;
use streaming_set_cover::prelude::*;

fn main() {
    let inst = instances::random_discs(1000, 500, 7, 99);
    println!(
        "instance: {} (n = {}, m = {} discs, planted k = 7)\n",
        inst.label,
        inst.points.len(),
        inst.shapes.len()
    );

    // --- ε-nets with measured failure rates. --------------------------
    let family = ShapeFamily::Discs;
    let weights = vec![1.0; inst.points.len()];
    let mut rng = StdRng::seed_from_u64(5);
    for eps in [0.25, 0.1, 0.05] {
        let bound = net_sample_size(family, eps, 0.1);
        let mut failures = 0;
        let mut total_size = 0;
        let trials = 25;
        for _ in 0..trials {
            let net = sample_epsilon_net(&inst.points, family, eps, 0.1, &mut rng);
            total_size += net.len();
            if verify_epsilon_net(&inst.points, &weights, &inst.shapes, &net, eps).is_some() {
                failures += 1;
            }
        }
        println!(
            "ε = {eps:<5} net ≈ {:>4} pts (bound {bound:>5})  measured failures {failures}/{trials} (budget q = 0.1)",
            total_size / trials,
        );
    }

    // --- Brönnimann–Goodrich: cover via reweighting. -------------------
    let out =
        bronnimann_goodrich(&inst.points, &inst.shapes, &BgConfig::default()).expect("coverable");
    inst.verify_cover(&out.cover).expect("verified");
    println!(
        "\nbronnimann-goodrich: |cover| = {} at guessed k = {} ({} doublings, {} nets)",
        out.cover.len(),
        out.guessed_k,
        out.doublings,
        out.net_draws
    );

    // --- The streaming algorithm on the same instance. ----------------
    let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
    let report = alg.run(&inst);
    report.verified.as_ref().expect("verified");
    println!(
        "algGeomSC(δ=1/4):    |cover| = {} in {} passes, {} words",
        report.cover_size(),
        report.passes,
        report.space_words
    );
    println!(
        "\nboth stay in the O(ρ_g·k) band; the streaming run never stored more than Õ(n) words"
    );
}
