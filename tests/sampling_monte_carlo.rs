//! Monte-Carlo verification of Lemma 2.5 — the relative
//! (p, ε)-approximation property `iterSetCover`'s analysis stands on.
//!
//! Definition 2.4: a sample `Z ⊆ V` is a relative (p, ε)-approximation
//! for a family `H` if every heavy range (`|r| ≥ p|V|`) has its density
//! estimated within a `(1±ε)` factor, and every light range within an
//! additive `εp`. Lemma 2.5 says a uniform sample of size
//! `(c′/ε²p)(log|H| log(1/p) + log(1/q))` fails with probability ≤ q.
//!
//! These tests *measure* that failure rate across many seeds — both at
//! the prescribed size (failures must be rare) and at a deliberately
//! starved size (failures must be common) — so the constant `c′` the
//! paper leaves unspecified is pinned against evidence, not assumed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use streaming_set_cover::algorithms::sampling::{relative_approx_size, sample_from_bitset};
use streaming_set_cover::bitset::BitSet;
use streaming_set_cover::setsystem::gen;

/// Checks Definition 2.4 for every set of the family against sample `z`.
/// Returns the number of violated ranges.
fn relative_approx_violations(
    sets: &[BitSet],
    universe: usize,
    z: &[u32],
    p: f64,
    eps: f64,
) -> usize {
    let zset = BitSet::from_iter(universe, z.iter().copied());
    let zn = z.len() as f64;
    let vn = universe as f64;
    sets.iter()
        .filter(|r| {
            let density = r.count() as f64 / vn;
            let estimate = r.intersection_count(&zset) as f64 / zn;
            if density >= p {
                // Heavy: multiplicative band.
                estimate < (1.0 - eps) * density || estimate > (1.0 + eps) * density
            } else {
                // Light: additive band.
                (estimate - density).abs() > eps * p
            }
        })
        .count()
}

#[test]
fn prescribed_sample_size_meets_the_failure_budget() {
    let n = 4096usize;
    let m = 256usize;
    // A mixed family: heavy uniform sets and a light sparse tail.
    let heavy = gen::uniform_random(n, m / 2, 0.2, 11);
    let light = gen::sparse(n, m / 2, 64, 13);
    let mut sets = heavy.system.all_bitsets();
    sets.extend(light.system.all_bitsets());

    let (p, eps, q) = (0.05, 0.5, 0.1);
    let size = relative_approx_size(p, eps, q, sets.len() as f64, 0.5).min(n);
    let live = BitSet::full(n);

    let trials = 40;
    let mut failures = 0usize;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed);
        let z = sample_from_bitset(&live, size, &mut rng);
        if relative_approx_violations(&sets, n, &z, p, eps) > 0 {
            failures += 1;
        }
    }
    // Budget q = 0.1 → expect ≤ 4 failures; allow 3× slack before
    // declaring the lemma's constants broken.
    assert!(
        failures <= 12,
        "sample size {size}: {failures}/{trials} trials violated the (p,ε)-approximation"
    );
}

#[test]
fn starved_sample_size_fails_often() {
    // Same family, 1/40th of the prescribed sample: the guarantee must
    // visibly break down — this is the injection that shows the bound
    // is load-bearing rather than slack.
    let n = 4096usize;
    let inst = gen::uniform_random(n, 128, 0.1, 17);
    let sets = inst.system.all_bitsets();

    let (p, eps, q) = (0.05, 0.25, 0.1);
    let prescribed = relative_approx_size(p, eps, q, sets.len() as f64, 0.5).min(n);
    let starved = (prescribed / 40).max(2);
    let live = BitSet::full(n);

    let trials = 40;
    let mut failures = 0usize;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let z = sample_from_bitset(&live, starved, &mut rng);
        if relative_approx_violations(&sets, n, &z, p, eps) > 0 {
            failures += 1;
        }
    }
    assert!(
        failures >= (trials / 2) as usize,
        "starved sample ({starved} of {prescribed}) failed only {failures}/{trials} — \
         the test family is not discriminating"
    );
}

#[test]
fn heavier_ranges_get_multiplicative_accuracy() {
    // The two-sided property of Definition 2.4, checked range by range:
    // heavy ranges are (1±ε)-estimated, light ranges ±εp-estimated —
    // and the *classification* threshold matters: a light range allowed
    // the multiplicative band would often fail it.
    let n = 8192usize;
    let mut sets = Vec::new();
    // Heavy ranges: densities 0.1 … 0.5.
    for d in 1..=5 {
        sets.push(BitSet::from_iter(
            n,
            (0..(n * d / 10) as u32).collect::<Vec<_>>(),
        ));
    }
    // Light ranges: a handful of elements each.
    for i in 0..5u32 {
        sets.push(BitSet::from_iter(n, [i * 7, i * 7 + 1]));
    }

    let (p, eps, q) = (0.05, 0.3, 0.05);
    let size = relative_approx_size(p, eps, q, sets.len() as f64, 0.5).min(n);
    let live = BitSet::full(n);
    let mut ok = 0usize;
    let trials = 20;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(7000 + seed);
        let z = sample_from_bitset(&live, size, &mut rng);
        if relative_approx_violations(&sets, n, &z, p, eps) == 0 {
            ok += 1;
        }
    }
    assert!(
        ok >= (trials - 3) as usize,
        "only {ok}/{trials} samples satisfied both bands"
    );

    // Light ranges of two elements essentially never survive the
    // multiplicative test (their estimate is 0 or huge): demonstrate
    // the definitional split is necessary by mis-classifying them.
    let mut rng = StdRng::seed_from_u64(42);
    let z = sample_from_bitset(&live, size, &mut rng);
    let zset = BitSet::from_iter(n, z.iter().copied());
    let light = &sets[5..];
    let mult_violations = light
        .iter()
        .filter(|r| {
            let density = r.count() as f64 / n as f64;
            let estimate = r.intersection_count(&zset) as f64 / z.len() as f64;
            estimate < (1.0 - eps) * density || estimate > (1.0 + eps) * density
        })
        .count();
    assert!(
        mult_violations >= 3,
        "light ranges unexpectedly pass the multiplicative band ({mult_violations}/5)"
    );
}

#[test]
fn lemma_2_6_family_of_residuals_is_protected() {
    // The family Lemma 2.6 actually applies the sampler to: residuals
    // `V \ ⋃C` over all candidate covers C of bounded size. Enumerate
    // it exhaustively for a small instance and verify the sample
    // protects every member — the union bound the proof takes, made
    // concrete.
    let n = 512usize;
    let inst = gen::planted(n, 12, 3, 5);
    let sets = inst.system.all_bitsets();
    let m = sets.len();

    // All residuals for covers of size ≤ 2 (|H| = 1 + m + m²/2).
    let mut residuals: Vec<BitSet> = vec![BitSet::full(n)];
    for i in 0..m {
        let mut r = BitSet::full(n);
        r.difference_with(&sets[i]);
        residuals.push(r.clone());
        for other in sets.iter().skip(i + 1) {
            let mut r2 = r.clone();
            r2.difference_with(other);
            residuals.push(r2);
        }
    }

    let (p, eps, q) = (0.1, 0.5, 0.05);
    let size = relative_approx_size(p, eps, q, residuals.len() as f64, 0.5).min(n);
    let live = BitSet::full(n);
    let trials = 20;
    let mut failures = 0;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(300 + seed);
        let z = sample_from_bitset(&live, size, &mut rng);
        if relative_approx_violations(&residuals, n, &z, p, eps) > 0 {
            failures += 1;
        }
    }
    assert!(
        failures <= 4,
        "residual family violated {failures}/{trials} times"
    );
}
