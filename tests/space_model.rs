//! Integration tests of the streaming model itself: pass counting and
//! space accounting behave like the paper's model across crates.

use streaming_set_cover::prelude::*;

#[test]
fn store_all_space_tracks_input_size() {
    // The one-pass baseline's measured footprint must scale with Σ|r|:
    // that is the O(mn) of Figure 1.1's first row.
    let small = gen::planted(256, 256, 8, 1);
    let big = gen::planted(256, 2048, 8, 1);
    let rs = run_reported(&mut StoreAllGreedy, &small.system);
    let rb = run_reported(&mut StoreAllGreedy, &big.system);
    let ratio_input = big.system.total_size() as f64 / small.system.total_size() as f64;
    let ratio_space = rb.space_words as f64 / rs.space_words as f64;
    assert!(
        (ratio_space / ratio_input - 1.0).abs() < 0.5,
        "space ratio {ratio_space:.2} vs input ratio {ratio_input:.2}"
    );
}

#[test]
fn semi_streaming_space_is_independent_of_m() {
    // Θ̃(n)-space algorithms must not notice the family growing.
    let small = gen::planted(512, 512, 8, 2);
    let big = gen::planted(512, 4096, 8, 2);
    for (mk, name) in [
        (
            Box::new(|| Box::new(ProgressiveGreedy) as Box<dyn StreamingSetCover>)
                as Box<dyn Fn() -> Box<dyn StreamingSetCover>>,
            "progressive",
        ),
        (
            Box::new(|| Box::new(EmekRosen) as Box<dyn StreamingSetCover>),
            "emek-rosen",
        ),
        (
            Box::new(|| Box::new(ChakrabartiWirth::new(3)) as Box<dyn StreamingSetCover>),
            "chakrabarti-wirth",
        ),
    ] {
        let rs = run_reported(mk().as_mut(), &small.system);
        let rb = run_reported(mk().as_mut(), &big.system);
        assert!(rs.verified.is_ok() && rb.verified.is_ok());
        assert!(
            rb.space_words <= rs.space_words + 64,
            "{name}: m grew 8x and space went {} → {}",
            rs.space_words,
            rb.space_words
        );
    }
}

#[test]
fn iter_set_cover_space_scales_sublinearly_in_n() {
    // Õ(mn^δ): quadrupling n at fixed m should grow space by roughly
    // n^δ = 2 (δ = 1/2), nowhere near 4.
    let m = 1024;
    let small = gen::planted(512, m, 8, 3);
    let big = gen::planted(2048, m, 8, 3);
    let mut a = IterSetCover::with_delta(0.5);
    let mut b = IterSetCover::with_delta(0.5);
    let rs = run_reported(&mut a, &small.system);
    let rb = run_reported(&mut b, &big.system);
    assert!(rs.verified.is_ok() && rb.verified.is_ok());
    let growth = rb.space_words as f64 / rs.space_words as f64;
    assert!(
        growth < 3.2,
        "space grew {growth:.2}× for 4× n — not n^δ-like"
    );
}

#[test]
fn pass_counters_cannot_be_bypassed() {
    // An algorithm that never calls pass() reports zero passes and
    // cannot have seen any set contents.
    struct Blind;
    impl StreamingSetCover for Blind {
        fn name(&self) -> String {
            "blind".into()
        }
        fn run(&mut self, stream: &SetStream<'_>, _: &SpaceMeter) -> Vec<u32> {
            (0..stream.num_sets() as u32).collect() // can only guess ids
        }
    }
    let inst = gen::planted(64, 32, 4, 1);
    let report = run_reported(&mut Blind, &inst.system);
    assert_eq!(report.passes, 0);
    assert!(report.verified.is_ok(), "taking everything still covers");
}

#[test]
fn meters_balance_for_every_algorithm() {
    let inst = gen::planted(256, 512, 8, 7);
    let mut algs: Vec<Box<dyn StreamingSetCover>> = vec![
        Box::new(StoreAllGreedy),
        Box::new(OnePickPerPassGreedy),
        Box::new(ProgressiveGreedy),
        Box::new(EmekRosen),
        Box::new(ChakrabartiWirth::new(3)),
        Box::new(Dimv14::with_delta(0.5)),
        Box::new(IterSetCover::with_delta(0.5)),
    ];
    for alg in &mut algs {
        let stream = SetStream::new(&inst.system);
        let meter = SpaceMeter::new();
        let name = alg.name();
        let _ = alg.run(&stream, &meter);
        assert_eq!(meter.current(), 0, "{name} leaked charged words");
        assert!(meter.peak() > 0, "{name} claims zero working memory");
    }
}

mod budget_audit {
    //! The budget audit: the paper's space bands as pass/fail verdicts.

    use streaming_set_cover::prelude::*;
    use streaming_set_cover::stream::run_budgeted;

    #[test]
    fn iter_set_cover_stays_inside_its_band() {
        // Theorem 2.8's band with the benchmark constants: the log n
        // parallel guesses each keep O(c·k·n^δ) sample words plus the
        // m·n^δ/k-ish projections; audit against c·m·n^δ·log²-ish.
        for n in [512usize, 1024, 2048] {
            let m = 2 * n;
            let inst = gen::planted(n, m, 8, 7);
            let band =
                (8.0 * m as f64 * (n as f64).sqrt() * (n as f64).log2().powi(2) / 8.0) as usize; // generous polylog headroom
            let (report, exceeded) =
                run_budgeted(&mut IterSetCover::with_delta(0.5), &inst.system, band);
            assert!(report.verified.is_ok(), "n={n}");
            assert!(
                !exceeded,
                "n={n}: iterSetCover used {} of its {band}-word band",
                report.space_words
            );
        }
    }

    #[test]
    fn semi_streaming_band_is_linear_in_n() {
        let inst = gen::planted(1024, 4096, 8, 3);
        // [ER14] keeps a pointer per element (~n/2 words as u32s) plus
        // bitmaps: audit against 4n words.
        let (report, exceeded) = run_budgeted(&mut EmekRosen, &inst.system, 4 * 1024);
        assert!(report.verified.is_ok());
        assert!(!exceeded, "[ER14] used {} words", report.space_words);
    }

    #[test]
    fn an_impossible_budget_trips_the_audit_without_breaking_the_run() {
        let inst = gen::planted(512, 1024, 8, 5);
        let (report, exceeded) = run_budgeted(&mut StoreAllGreedy, &inst.system, 64);
        assert!(exceeded, "store-all cannot fit 64 words");
        assert!(
            report.verified.is_ok(),
            "the run itself still completes and covers"
        );
    }

    #[test]
    fn store_all_genuinely_needs_omega_of_input() {
        // Theorem 3.8's message, audited: one pass + good quality ⇒
        // pay the input. Half of Σ|r|/2 words is not enough.
        let inst = gen::planted(1024, 2048, 8, 9);
        let input_words = inst.system.total_size() / 2;
        let (_, exceeded) = run_budgeted(&mut StoreAllGreedy, &inst.system, input_words / 2);
        assert!(exceeded, "store-all fit in half the input footprint?!");
    }
}
