//! End-to-end tests of the `sctool` binary: the generate → convert →
//! inspect → solve → certify workflow, plus its error paths.

use std::path::PathBuf;
use std::process::{Command, Output};

fn sctool() -> PathBuf {
    // Integration tests live next to the binary under test.
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // deps/
    path.pop(); // debug/ (or release/)
    path.push("sctool");
    assert!(
        path.exists(),
        "sctool not built at {path:?} — cargo builds bins for test runs"
    );
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(sctool())
        .args(args)
        .output()
        .expect("spawn sctool")
}

fn run_with_stdin(args: &[&str], stdin: &[u8]) -> Output {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(sctool())
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn sctool");
    child.stdin.as_mut().unwrap().write_all(stdin).unwrap();
    child.wait_with_output().expect("wait sctool")
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "sctool failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn gen_info_solve_certify_round_trip() {
    let dir = std::env::temp_dir().join(format!("sctool-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sc = dir.join("inst.sc");
    let scb = dir.join("inst.scb");

    // gen → file
    let generated = stdout(&run(&[
        "gen", "planted", "--n", "128", "--m", "256", "--k", "4", "--seed", "9",
    ]));
    std::fs::write(&sc, &generated).unwrap();

    // info on text
    let info = stdout(&run(&["info", sc.to_str().unwrap()]));
    assert!(info.contains("universe   : 128"), "{info}");
    assert!(info.contains("sets       : 256"), "{info}");
    assert!(info.contains("known cover: 4 sets (valid)"), "{info}");

    // convert text → binary; binary must be smaller and info-identical
    let msg = stdout(&run(&[
        "convert",
        sc.to_str().unwrap(),
        scb.to_str().unwrap(),
    ]));
    assert!(msg.contains("SCB1 binary"), "{msg}");
    let info_bin = stdout(&run(&["info", scb.to_str().unwrap()]));
    assert_eq!(info, info_bin, "binary info must match text info");
    let text_len = std::fs::metadata(&sc).unwrap().len();
    let bin_len = std::fs::metadata(&scb).unwrap().len();
    assert!(
        bin_len < text_len,
        "binary {bin_len} not smaller than text {text_len}"
    );

    // solve on the binary file
    let solve = stdout(&run(&[
        "solve",
        "iter",
        scb.to_str().unwrap(),
        "--delta",
        "0.5",
    ]));
    assert!(solve.contains("iterSetCover"), "{solve}");
    assert!(solve.contains("ok"), "{solve}");

    // certify: with a planted k=4 instance, the sandwich must include 4
    let certify = stdout(&run(&["certify", scb.to_str().unwrap()]));
    assert!(certify.contains("OPT ∈ ["), "{certify}");

    // exact agrees with the plant
    let exact = stdout(&run(&["exact", scb.to_str().unwrap()]));
    assert!(exact.contains("optimum (certified): 4 sets"), "{exact}");

    // convert back to text and compare instance content via info
    let sc2 = dir.join("roundtrip.sc");
    stdout(&run(&[
        "convert",
        scb.to_str().unwrap(),
        sc2.to_str().unwrap(),
    ]));
    let info_rt = stdout(&run(&["info", sc2.to_str().unwrap()]));
    assert_eq!(info, info_rt);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stdin_dash_reads_text() {
    let generated = stdout(&run(&[
        "gen", "uniform", "--n", "64", "--m", "32", "--p", "0.2", "--seed", "1",
    ]));
    let info = run_with_stdin(&["info", "-"], generated.as_bytes());
    let text = stdout(&info);
    assert!(text.contains("universe   : 64"), "{text}");
}

#[test]
fn gen_binary_flag_emits_scb1() {
    let out = run(&[
        "gen", "planted", "--n", "32", "--m", "16", "--k", "2", "--binary",
    ]);
    assert!(out.status.success());
    assert!(out.stdout.starts_with(b"SCB1\n"), "missing magic");
}

#[test]
fn solve_all_runs_every_algorithm() {
    let generated = stdout(&run(&[
        "gen", "planted", "--n", "64", "--m", "128", "--k", "4", "--seed", "2",
    ]));
    let out = run_with_stdin(&["solve", "all", "-"], generated.as_bytes());
    let text = stdout(&out);
    for label in [
        "greedy/store-all",
        "emek-rosen",
        "chakrabarti-wirth",
        "one-pass-projection",
        "dimv14",
        "iterSetCover",
    ] {
        assert!(text.contains(label), "missing {label} in:\n{text}");
    }
}

#[test]
fn stdin_dash_reads_scb1_binary() {
    let out = run(&[
        "gen", "planted", "--n", "64", "--m", "32", "--k", "2", "--seed", "5", "--binary",
    ]);
    assert!(out.status.success());
    assert!(out.stdout.starts_with(b"SCB1\n"));
    // Pipe the binary straight into the solver: the stdin reader sniffs
    // the magic, so generators can feed either format.
    let solve = run_with_stdin(&["solve", "iter", "-"], &out.stdout);
    let text = stdout(&solve);
    assert!(text.contains("iterSetCover"), "{text}");
    assert!(text.contains("ok"), "{text}");
    let info = run_with_stdin(&["info", "-"], &out.stdout);
    assert!(stdout(&info).contains("universe   : 64"));
}

#[test]
fn text_parse_errors_name_the_file_and_line() {
    let dir = std::env::temp_dir().join(format!("sctool-parse-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.sc");
    std::fs::write(&bad, "p setcover 4 1\ns 9\n").unwrap();
    let out = run(&["info", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains(&format!("{}:2:", bad.display())),
        "error must carry file name and line: {err}"
    );
    assert!(err.contains("outside universe"), "{err}");
    // The stdin pseudo-file is named too.
    let out = run_with_stdin(&["info", "-"], b"p setcover 4 1\ns x\n");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("<stdin>:2:"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_stdin_round_trips_three_concurrent_queries() {
    let generated = stdout(&run(&[
        "gen", "planted", "--n", "128", "--m", "256", "--k", "4", "--seed", "3",
    ]));
    let dir = std::env::temp_dir().join(format!("sctool-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sc = dir.join("inst.sc");
    std::fs::write(&sc, &generated).unwrap();
    let out = run_with_stdin(
        &["serve", sc.to_str().unwrap()],
        b"iter delta=0.5 seed=1\npartial eps=0.2\ngreedy\n",
    );
    let text = stdout(&out);
    let ok_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("ok ")).collect();
    assert_eq!(ok_lines.len(), 3, "{text}");
    for (kind, id) in [("iter", "id=0"), ("partial", "id=1"), ("greedy", "id=2")] {
        assert!(
            ok_lines
                .iter()
                .any(|l| l.contains(&format!("kind={kind}")) && l.contains(id)),
            "missing {kind} response in:\n{text}"
        );
    }
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("3 queries"), "summary on stderr: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_tcp_round_trip_with_client_and_clean_shutdown() {
    use std::io::BufRead;
    use std::process::Stdio;
    let generated = stdout(&run(&[
        "gen", "planted", "--n", "128", "--m", "256", "--k", "4", "--seed", "4",
    ]));
    let dir = std::env::temp_dir().join(format!("sctool-tcp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sc = dir.join("inst.sc");
    std::fs::write(&sc, &generated).unwrap();
    // Port 0: the OS picks a free port, the server announces it.
    let mut server = Command::new(sctool())
        .args(["serve", sc.to_str().unwrap(), "--listen", "127.0.0.1:0"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn server");
    let mut stderr_lines = std::io::BufReader::new(server.stderr.take().unwrap()).lines();
    let addr = loop {
        let line = stderr_lines
            .next()
            .expect("server exited before announcing its address")
            .expect("read server stderr");
        if let Some(addr) = line.strip_prefix("sctool serve: listening on ") {
            break addr.to_string();
        }
    };
    // An idle connection that never sends anything: shutdown must not
    // wait for it (the server closes its read half to unblock).
    let idle = std::net::TcpStream::connect(&addr).expect("idle connect");
    let client = run(&[
        "client",
        "--connect",
        &addr,
        "--wait-ready",
        "30",
        "--queries",
        "3",
        "--concurrency",
        "3",
        "--shutdown",
    ]);
    let client_out = stdout(&client);
    assert!(client_out.contains("3 queries (3 ok"), "{client_out}");
    assert!(client_out.contains("latency"), "{client_out}");
    let status = server.wait().expect("server exit");
    assert!(status.success(), "server must shut down cleanly: {status}");
    drop(idle);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_command_exits_2_with_usage() {
    let out = run(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = run(&["info", "/nonexistent/path.sc"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("/nonexistent/path.sc"), "{err}");
}

#[test]
fn corrupt_binary_is_reported_with_location() {
    let dir = std::env::temp_dir().join(format!("sctool-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let scb = dir.join("bad.scb");
    let out = run(&[
        "gen", "planted", "--n", "64", "--m", "32", "--k", "2", "--binary",
    ]);
    let mut bytes = out.stdout.clone();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&scb, &bytes).unwrap();
    let out = run(&["info", scb.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("corrupt"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
