//! End-to-end integration: every streaming algorithm on shared
//! workloads, cross-checked against each other and against ground
//! truth.

use streaming_set_cover::prelude::*;

/// Runs every algorithm in the repository on one instance and returns
/// the verified reports.
fn run_everything(system: &SetSystem) -> Vec<RunReport> {
    let mut reports = Vec::new();
    let mut algs: Vec<Box<dyn StreamingSetCover>> = vec![
        Box::new(StoreAllGreedy),
        Box::new(OnePickPerPassGreedy),
        Box::new(ProgressiveGreedy),
        Box::new(SahaGetoor::default()),
        Box::new(EmekRosen),
        Box::new(ChakrabartiWirth::new(2)),
        Box::new(ChakrabartiWirth::new(4)),
        Box::new(Dimv14::with_delta(0.5)),
        Box::new(IterSetCover::with_delta(0.5)),
        Box::new(IterSetCover::with_delta(0.25)),
        Box::new(IterSetCover::new(IterSetCoverConfig {
            solver: OfflineSolver::DEFAULT_EXACT,
            ..Default::default()
        })),
    ];
    for alg in &mut algs {
        let report = run_reported(alg.as_mut(), system);
        assert!(
            report.verified.is_ok(),
            "{} failed verification: {:?}",
            report.algorithm,
            report.verified
        );
        reports.push(report);
    }
    reports
}

#[test]
fn all_algorithms_cover_planted_instances() {
    for seed in 0..3 {
        let inst = gen::planted(400, 800, 10, seed);
        let opt = inst.planted.as_ref().unwrap().len();
        for report in run_everything(&inst.system) {
            assert!(
                report.cover_size() <= 40 * opt,
                "{}: |sol|={} vs OPT={opt}",
                report.algorithm,
                report.cover_size()
            );
        }
    }
}

#[test]
fn all_algorithms_cover_skewed_instances() {
    let inst = gen::zipf(600, 300, 1.2, 100, 9);
    let _ = run_everything(&inst.system);
}

#[test]
fn all_algorithms_cover_sparse_instances() {
    let inst = gen::sparse(300, 120, 5, 4);
    let _ = run_everything(&inst.system);
}

#[test]
fn all_algorithms_survive_the_greedy_adversary() {
    let inst = gen::greedy_adversarial(6);
    let reports = run_everything(&inst.system);
    // Greedy variants fall for the baits (that is the point of the
    // instance); the exact-oracle iterSetCover must not.
    let store_all = &reports[0];
    assert!(store_all.cover_size() >= 6, "greedy must take the baits");
    let exact_iter = reports.last().unwrap();
    assert!(
        exact_iter.cover_size() <= 4,
        "ρ=1 iterSetCover should find (nearly) the planted pair, got {}",
        exact_iter.cover_size()
    );
}

#[test]
fn pass_space_tradeoffs_are_ordered() {
    let inst = gen::planted(1024, 2048, 8, 5);
    let reports = run_everything(&inst.system);
    let by_name = |needle: &str| {
        reports
            .iter()
            .find(|r| r.algorithm.contains(needle))
            .unwrap_or_else(|| panic!("{needle} missing"))
    };

    // One-pass store-all uses the most space of any algorithm except
    // [SG09], whose O(n² log n) bound legitimately exceeds O(Σ|r|)
    // (it keeps k candidate sets verbatim per guess).
    let store = by_name("store-all");
    for r in &reports {
        if r.algorithm.contains("saha-getoor") {
            continue;
        }
        assert!(
            store.space_words >= r.space_words,
            "{} out-spaces store-all",
            r.algorithm
        );
    }
    // The Θ̃(n)-space algorithms use far less than store-all.
    for needle in ["emek-rosen", "progressive"] {
        assert!(by_name(needle).space_words * 4 < store.space_words);
    }
    // iterSetCover stays within its pass budget.
    let iter = by_name("iterSetCover(δ=0.5, ρ=greedy");
    assert!(iter.passes <= 5);
}

#[test]
fn dimv14_pays_exponentially_more_passes_on_thin_sets() {
    // The paper's headline comparison: same Õ(mn^δ) space band, but
    // [DIMV14]'s recursion spends far more passes than 2/δ when sample
    // covers do not generalise (thin random sets).
    let inst = gen::uniform_random(2048, 1024, 0.004, 7);
    let delta = 0.25;
    let mut iter = IterSetCover::with_delta(delta);
    let iter_report = run_reported(&mut iter, &inst.system);
    let mut dimv = Dimv14::with_delta(delta);
    let dimv_report = run_reported(&mut dimv, &inst.system);
    assert!(iter_report.verified.is_ok());
    assert!(dimv_report.verified.is_ok());
    assert!(iter_report.passes <= 2 * 4 + 1);
    assert!(
        dimv_report.passes > iter_report.passes,
        "dimv14 {} vs iterSetCover {}",
        dimv_report.passes,
        iter_report.passes
    );
}

#[test]
fn solution_sets_exist_and_are_unique() {
    let inst = gen::planted_noisy(300, 500, 12, 8);
    for report in run_everything(&inst.system) {
        let mut ids = report.cover.clone();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            before,
            ids.len(),
            "{} emitted duplicate ids",
            report.algorithm
        );
        assert!(ids.iter().all(|&id| (id as usize) < inst.system.num_sets()));
    }
}
