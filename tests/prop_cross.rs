//! Cross-crate property tests: algorithm outputs versus certified
//! optima on randomly generated instances.

use proptest::prelude::*;
use streaming_set_cover::bitset::BitSet;
use streaming_set_cover::offline::exact;
use streaming_set_cover::prelude::*;

fn planted_instance() -> impl Strategy<Value = Instance> {
    (20usize..120, 2usize..6, 0usize..30, 0u64..500).prop_map(|(n, k, extra, seed)| {
        let k = k.min(n);
        gen::planted(n, k + extra, k, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn iter_set_cover_is_within_factor_of_certified_opt(inst in planted_instance()) {
        let sets = inst.system.all_bitsets();
        let target = BitSet::full(inst.system.universe());
        let certified = exact(&sets, &target, 5_000_000).expect("feasible");
        prop_assume!(certified.optimal);
        let opt = certified.cover.len();

        let mut alg = IterSetCover::with_delta(0.5);
        let report = run_reported(&mut alg, &inst.system);
        prop_assert!(report.verified.is_ok());
        // Theorem 2.8's O(ρ/δ) with generous constants at tiny scale:
        // ρ ≤ ln n + 1, 1/δ = 2, plus the final cleanup pass.
        let n = inst.system.universe() as f64;
        let bound = ((n.ln() + 2.0) * 2.0 * opt as f64).ceil() as usize + 4;
        prop_assert!(
            report.cover_size() <= bound,
            "|sol|={} opt={opt} bound={bound}",
            report.cover_size()
        );
    }

    #[test]
    fn every_streaming_algorithm_at_least_matches_trivial_bounds(inst in planted_instance()) {
        let opt_hint = inst.opt_upper_bound();
        let mut algs: Vec<Box<dyn StreamingSetCover>> = vec![
            Box::new(ProgressiveGreedy),
            Box::new(EmekRosen),
            Box::new(ChakrabartiWirth::new(2)),
            Box::new(IterSetCover::with_delta(0.5)),
        ];
        for alg in &mut algs {
            let report = run_reported(alg.as_mut(), &inst.system);
            prop_assert!(report.verified.is_ok(), "{}", report.algorithm);
            prop_assert!(report.cover_size() >= opt_hint.min(1));
            prop_assert!(report.cover_size() <= inst.system.num_sets());
        }
    }

    #[test]
    fn emitted_ids_always_in_range(inst in planted_instance()) {
        let mut alg = IterSetCover::with_delta(1.0);
        let report = run_reported(&mut alg, &inst.system);
        prop_assert!(report.cover.iter().all(|&id| (id as usize) < inst.system.num_sets()));
    }

    #[test]
    fn store_all_equals_offline_greedy(inst in planted_instance()) {
        // The 1-pass store-all baseline must produce the identical
        // solution to the offline lazy greedy (same tie-breaking).
        let report = run_reported(&mut StoreAllGreedy, &inst.system);
        let sets = inst.system.all_bitsets();
        let target = BitSet::full(inst.system.universe());
        let offline = streaming_set_cover::offline::greedy(&sets, &target).expect("feasible");
        let got: Vec<usize> = report.cover.iter().map(|&x| x as usize).collect();
        prop_assert_eq!(got, offline);
    }
}
