//! Integration: the geometric pipeline against the combinatorial one.
//!
//! A geometric instance can be materialised into an abstract set system
//! (`O(mn)` — what the streaming algorithm avoids); solutions found
//! geometrically must verify combinatorially, and vice versa.

use streaming_set_cover::geometry::{instances, AlgGeomSc, AlgGeomScConfig};
use streaming_set_cover::prelude::*;

#[test]
fn geometric_covers_verify_on_the_materialised_system() {
    for (name, inst) in [
        ("discs", instances::random_discs(300, 150, 6, 1)),
        ("rects", instances::random_rects(300, 150, 6, 2)),
        ("tris", instances::random_fat_triangles(300, 150, 6, 3)),
    ] {
        let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
        let report = alg.run(&inst);
        assert!(report.verified.is_ok(), "{name}: {:?}", report.verified);
        // Shape ids are set ids in the materialised system.
        let system = inst.to_set_system();
        assert!(
            system.verify_cover(&report.cover).is_ok(),
            "{name}: geometric cover fails combinatorially"
        );
    }
}

#[test]
fn combinatorial_algorithms_solve_materialised_geometry() {
    let inst = instances::random_discs(250, 120, 5, 7);
    let system = inst.to_set_system();
    let opt = inst.planted.as_ref().unwrap().len();
    for report in [
        run_reported(&mut StoreAllGreedy, &system),
        run_reported(&mut IterSetCover::with_delta(0.5), &system),
    ] {
        assert!(report.verified.is_ok());
        assert!(report.cover_size() <= 10 * opt);
        // And the combinatorial solution covers geometrically too.
        assert!(inst.verify_cover(&report.cover).is_ok());
    }
}

#[test]
fn geometric_streaming_beats_materialisation_in_space_on_dense_families() {
    // The two-line family has m = Θ(n²) shapes: materialising costs
    // Θ(n²), algGeomSC stays Õ(n) per guess.
    let inst = instances::two_line(64, None, 4);
    let materialised_words = inst.to_set_system().total_size() / 2;
    let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
    let report = alg.run(&inst);
    assert!(report.verified.is_ok());
    assert!(
        report.space_words < 4 * materialised_words,
        "streaming {} vs materialised {}",
        report.space_words,
        materialised_words
    );
    // The sharper claim is on the store itself.
    assert!(report.max_store_candidates * 4 < inst.shapes.len());
}

#[test]
fn canonical_representation_is_lossless_for_cover_purposes() {
    // Covering with canonical candidates then re-attaching shapes must
    // produce exactly as good a cover as the planted optimum allows.
    let inst = instances::random_rects(400, 100, 4, 9);
    let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
    let report = alg.run(&inst);
    assert!(report.verified.is_ok());
    let opt = inst.planted.as_ref().unwrap().len();
    assert!(
        report.cover_size() <= 8 * opt,
        "canonical indirection cost too much: {} vs OPT {opt}",
        report.cover_size()
    );
}
