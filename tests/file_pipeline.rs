//! Integration: the serialisation formats carry full experiments —
//! write an instance, read it back, and get identical algorithm
//! behaviour (same covers, same measurements).

use streaming_set_cover::geometry::{instances, io as gio, AlgGeomSc, AlgGeomScConfig};
use streaming_set_cover::prelude::*;
use streaming_set_cover::setsystem::io as scio;

#[test]
fn combinatorial_roundtrip_preserves_algorithm_behaviour() {
    let inst = gen::planted(300, 500, 8, 17);
    let text = scio::to_string(&inst);
    let back = scio::from_str(&text).expect("parse back");

    for mk in [
        || Box::new(IterSetCover::with_delta(0.5)) as Box<dyn StreamingSetCover>,
        || Box::new(ProgressiveGreedy) as Box<dyn StreamingSetCover>,
    ] {
        let a = run_reported(mk().as_mut(), &inst.system);
        let b = run_reported(mk().as_mut(), &back.system);
        assert_eq!(a.cover, b.cover, "{}", a.algorithm);
        assert_eq!(a.passes, b.passes);
        assert_eq!(a.space_words, b.space_words);
    }
}

#[test]
fn geometric_roundtrip_preserves_algorithm_behaviour() {
    let inst = instances::random_discs(200, 100, 5, 23);
    let text = gio::to_string(&inst);
    let back = gio::from_str(&text).expect("parse back");

    let mut a = AlgGeomSc::new(AlgGeomScConfig::default());
    let mut b = AlgGeomSc::new(AlgGeomScConfig::default());
    let ra = a.run(&inst);
    let rb = b.run(&back);
    assert_eq!(ra.cover, rb.cover);
    assert_eq!(ra.passes, rb.passes);
    assert_eq!(ra.space_words, rb.space_words);
}

#[test]
fn formats_reject_cross_contamination() {
    // Feeding one format to the other parser fails loudly, not quietly.
    let comb = scio::to_string(&gen::planted(20, 10, 2, 1));
    assert!(gio::from_str(&comb).is_err());
    let geom = gio::to_string(&instances::random_rects(20, 10, 2, 1));
    assert!(scio::from_str(&geom).is_err());
}

#[test]
fn planted_metadata_survives_and_keeps_meaning() {
    let inst = gen::sparse(120, 60, 6, 5);
    let back = scio::from_str(&scio::to_string(&inst)).unwrap();
    let planted = back.planted.expect("planted cover preserved");
    assert!(back.system.verify_cover(&planted).is_ok());
    assert_eq!(back.system.max_set_size(), inst.system.max_set_size());
}
