//! Integration: the lower-bound constructions meet the upper-bound
//! algorithms.
//!
//! The reduced Set Cover instances of Sections 5–6 are ordinary
//! instances; the streaming algorithms must solve them, and their
//! solution sizes bracket the certified optimum that encodes the ISC
//! answer.

use streaming_set_cover::comm::chasing::IntersectionSetChasing;
use streaming_set_cover::comm::disjointness::AliceInput;
use streaming_set_cover::comm::recover::{recover, RecoverConfig};
use streaming_set_cover::comm::reduction_sec5::{reduce, verify_corollary_5_8};
use streaming_set_cover::comm::reduction_sec6::Sec6Instance;
use streaming_set_cover::prelude::*;

#[test]
fn streaming_algorithms_solve_reduced_instances() {
    let isc = IntersectionSetChasing::random(5, 2, 2, 3);
    let red = reduce(&isc);
    let v = verify_corollary_5_8(&isc, 50_000_000);
    assert!(v.holds);

    for report in [
        run_reported(&mut StoreAllGreedy, &red.system),
        run_reported(&mut ProgressiveGreedy, &red.system),
        run_reported(&mut IterSetCover::with_delta(0.5), &red.system),
    ] {
        assert!(report.verified.is_ok(), "{}", report.algorithm);
        assert!(
            report.cover_size() >= v.opt,
            "{} beat the certified optimum?!",
            report.algorithm
        );
    }
}

#[test]
fn exact_oracle_iter_set_cover_recovers_the_certified_optimum_band() {
    // With ρ = 1 and δ = 1 (one giant sample = the whole residual),
    // iterSetCover degenerates to exact offline solving and should land
    // on the optimum for the reduction instances.
    let isc = IntersectionSetChasing::random(4, 2, 2, 11);
    let red = reduce(&isc);
    let v = verify_corollary_5_8(&isc, 50_000_000);
    let mut alg = IterSetCover::new(IterSetCoverConfig {
        delta: 1.0,
        solver: OfflineSolver::Exact {
            node_budget: 50_000_000,
        },
        ..Default::default()
    });
    let report = run_reported(&mut alg, &red.system);
    assert!(report.verified.is_ok());
    assert!(
        report.cover_size() <= v.opt + 2,
        "exact-oracle run strayed: {} vs OPT {}",
        report.cover_size(),
        v.opt
    );
}

#[test]
fn sparse_instances_are_streamable() {
    let inst = Sec6Instance::random(64, 2, 2, 5, 1);
    let system = &inst.reduction.system;
    let report = run_reported(&mut ProgressiveGreedy, system);
    assert!(report.verified.is_ok());
    // Every set is sparse, so the stream never surprises the algorithm.
    assert!(system.max_set_size() <= inst.sparsity_bound().max(system.max_set_size()));
}

#[test]
fn recovery_decodes_what_the_streaming_model_cannot_compress() {
    // The Section 3 engine: decoding succeeds, certifying the Ω(mn)
    // description complexity; StoreAllGreedy's measured space on a
    // corresponding cover instance is the matching upper bound.
    let (m, n) = (12, 48);
    let alice = AliceInput::random(n, m, 2);
    let out = recover(&alice, &RecoverConfig::default());
    assert!(out.exact);
    assert_eq!(out.decoded_bits(&alice), m * n);
}
