//! Failure injection: every algorithm must degrade gracefully — no
//! panic, no unbalanced space meter, an honest `verified` error — when
//! the instance is broken or degenerate.
//!
//! The paper's model assumes coverable instances; a production library
//! cannot. These tests feed every streaming algorithm (a) instances
//! with uncoverable elements, (b) degenerate universes, and (c) empty
//! or duplicate-heavy families, and assert uniform behaviour.

use streaming_set_cover::prelude::*;

/// Every full-cover streaming algorithm under test, fresh per call.
fn all_algorithms() -> Vec<Box<dyn StreamingSetCover>> {
    vec![
        Box::new(IterSetCover::with_delta(0.5)),
        Box::new(IterSetCover::with_delta(0.25)),
        Box::new(StoreAllGreedy),
        Box::new(OnePickPerPassGreedy),
        Box::new(ProgressiveGreedy),
        Box::new(SahaGetoor::default()),
        Box::new(EmekRosen),
        Box::new(ChakrabartiWirth::new(3)),
        Box::new(Dimv14::with_delta(0.5)),
        Box::new(OnePassProjection::new(4.0)),
    ]
}

/// Runs `alg` and asserts the meter balanced (all tracked structures
/// released) regardless of the verdict.
fn run_balanced(alg: &mut dyn StreamingSetCover, system: &SetSystem) -> RunReport {
    let stream = SetStream::new(system);
    let meter = SpaceMeter::new();
    let start = std::time::Instant::now();
    let cover = alg.run(&stream, &meter);
    let elapsed = start.elapsed();
    assert_eq!(
        meter.current(),
        0,
        "{}: space meter unbalanced after run",
        alg.name()
    );
    let verified = system.verify_cover(&cover).map_err(|e| e.to_string());
    RunReport {
        algorithm: alg.name(),
        cover,
        passes: stream.passes(),
        space_words: meter.peak(),
        elapsed,
        verified,
    }
}

#[test]
fn uncoverable_element_fails_verification_not_the_process() {
    // Element 7 is in no set.
    let system = SetSystem::from_sets(8, vec![vec![0, 1, 2], vec![3, 4], vec![5, 6]]);
    assert!(!system.is_coverable());
    for mut alg in all_algorithms() {
        let report = run_balanced(alg.as_mut(), &system);
        assert!(
            report.verified.is_err(),
            "{}: claimed to cover an uncoverable instance",
            report.algorithm
        );
    }
}

#[test]
fn empty_family_is_survivable() {
    let system = SetSystem::from_sets(4, vec![]);
    for mut alg in all_algorithms() {
        let report = run_balanced(alg.as_mut(), &system);
        assert!(report.verified.is_err(), "{}", report.algorithm);
        assert!(report.cover.is_empty(), "{}", report.algorithm);
    }
}

#[test]
fn all_empty_sets_are_survivable() {
    let system = SetSystem::from_sets(4, vec![vec![], vec![], vec![]]);
    for mut alg in all_algorithms() {
        let report = run_balanced(alg.as_mut(), &system);
        assert!(report.verified.is_err(), "{}", report.algorithm);
    }
}

#[test]
fn singleton_universe_is_covered_by_everyone() {
    let system = SetSystem::from_sets(1, vec![vec![0]]);
    for mut alg in all_algorithms() {
        let report = run_balanced(alg.as_mut(), &system);
        assert!(
            report.verified.is_ok(),
            "{}: {:?}",
            report.algorithm,
            report.verified
        );
        assert_eq!(report.cover_size(), 1, "{}", report.algorithm);
    }
}

#[test]
fn duplicate_heavy_family_yields_no_duplicate_picks() {
    // 50 copies of the same two sets.
    let mut sets = Vec::new();
    for _ in 0..50 {
        sets.push(vec![0u32, 1, 2, 3]);
        sets.push(vec![4u32, 5, 6, 7]);
    }
    let system = SetSystem::from_sets(8, sets);
    for mut alg in all_algorithms() {
        let report = run_balanced(alg.as_mut(), &system);
        assert!(
            report.verified.is_ok(),
            "{}: {:?}",
            report.algorithm,
            report.verified
        );
        let mut ids = report.cover.clone();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(
            ids.len(),
            before,
            "{}: duplicate picks emitted",
            report.algorithm
        );
    }
}

#[test]
fn full_universe_set_hiding_among_noise_is_found_by_quality_algorithms() {
    // One full set among 200 singletons: the greedy-quality algorithms
    // must find covers near 1; threshold algorithms may buy pointers
    // but still must cover.
    let mut sets: Vec<Vec<u32>> = (0..200u32).map(|e| vec![e % 64]).collect();
    sets.push((0..64u32).collect());
    let system = SetSystem::from_sets(64, sets);
    for mut alg in all_algorithms() {
        let report = run_balanced(alg.as_mut(), &system);
        assert!(
            report.verified.is_ok(),
            "{}: {:?}",
            report.algorithm,
            report.verified
        );
        assert!(report.cover_size() <= 64, "{}", report.algorithm);
    }
    let mut store_all = StoreAllGreedy;
    let report = run_balanced(&mut store_all, &system);
    assert_eq!(report.cover_size(), 1, "greedy must take the full set");
}

#[test]
fn partial_cover_handles_uncoverable_tail_gracefully() {
    // 20% of elements are in no set. The threshold-based partial
    // algorithms reach any goal within the coverable 80%; the
    // sampling-based iterSetCover variant samples the uncoverable tail,
    // detects infeasibility, and reports failure honestly — neither may
    // panic or leak meter charge.
    let n = 100usize;
    let sets: Vec<Vec<u32>> = (0..16u32)
        .map(|i| (0..80u32).filter(|e| e % 16 == i).collect())
        .collect();
    let system = SetSystem::from_sets(n, sets);

    let ok = run_partial(&mut PartialProgressiveGreedy, &system, 0.25);
    assert!(
        ok.goal_met(),
        "75% goal reachable by thresholding: {}/{}",
        ok.covered,
        ok.required
    );
    let ok = run_partial(&mut PartialEmekRosen, &system, 0.25);
    assert!(
        ok.goal_met(),
        "75% goal reachable by [ER14]: {}/{}",
        ok.covered,
        ok.required
    );

    let too_much = run_partial(&mut PartialProgressiveGreedy, &system, 0.05);
    assert!(
        !too_much.goal_met(),
        "95% goal is impossible; goal_met must say so"
    );

    // iterSetCover's element sampling hits the dead 20% and aborts each
    // guess: an honest (empty-handed) failure, not a panic.
    let mut alg = PartialIterSetCover::new(IterSetCoverConfig::default());
    let sampled = run_partial(&mut alg, &system, 0.25);
    assert!(
        !sampled.goal_met() || sampled.covered >= sampled.required,
        "report must be self-consistent"
    );
}

#[test]
fn geometric_uncoverable_point_is_reported() {
    use streaming_set_cover::geometry::instances;
    let inst = instances::random_discs(60, 30, 4, 2);
    let mut points = inst.points.clone();
    points.push(streaming_set_cover::geometry::Point::new(1e8, 1e8));
    let broken = GeomInstance {
        points,
        shapes: inst.shapes.clone(),
        planted: None,
        label: "broken".into(),
    };
    let mut alg = AlgGeomSc::new(AlgGeomScConfig::default());
    let report = alg.run(&broken);
    assert!(report.verified.is_err(), "far-away point cannot be covered");
    assert!(bronnimann_goodrich(&broken.points, &broken.shapes, &BgConfig::default()).is_none());
}
